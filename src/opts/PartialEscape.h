//===- opts/PartialEscape.h - Partial escape analysis ------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flow- and branch-sensitive partial escape analysis with scalar
/// replacement (paper §5.2, after Stadler's PEA). Allocations are tracked
/// as virtual objects along the dominator tree: field values stay exactly
/// known until the first true escape *on that path*, so loads forward even
/// for allocations that escape later, escapes on one branch do not poison
/// the sibling branch, and allocations whose escapes are confined to one
/// dominated block materialize lazily there instead of on every path.
///
/// This is the optimization DBDS duplication unlocks: an allocation that
/// escapes only through a merge phi becomes scalar-replaceable once the
/// merge is duplicated away (Listing 3), which the Simulator prices as
/// AllocationSinks/PartialEscapes opportunities.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_OPTS_PARTIALESCAPE_H
#define DBDS_OPTS_PARTIALESCAPE_H

#include "opts/Phase.h"

namespace dbds {

class NewInst;

/// Classifies one use of allocation \p New. A use is *non-escaping* when
/// it can never make the object observable to the rest of the program:
/// loading a field of the object, or storing a value *into* the object.
/// Everything else — being stored as a value, any Call or Invoke operand,
/// flowing into a phi, being returned or compared — escapes. The per-
/// opcode classification is explicit so Call and Invoke (and phi
/// forwarding) are handled consistently rather than falling through a
/// default case.
bool useEscapesAllocation(const NewInst *New, const Instruction *User);

/// True when no use of \p New escapes: its users are exactly field loads
/// from it and field stores into it. Such an allocation is invisible to
/// the rest of the program and may be scalar-replaced.
bool allocationDoesNotEscape(NewInst *New);

/// Per-function statistics for one PartialEscapePhase::run invocation.
struct PartialEscapeStats {
  unsigned AllocationsTracked = 0; ///< allocations ever virtual on a path
  unsigned LoadsForwarded = 0;     ///< loads replaced by known field values
  unsigned StoresEliminated = 0;   ///< initializer stores deleted
  unsigned AllocsScalarReplaced = 0; ///< allocations deleted outright
  unsigned AllocsSunk = 0; ///< allocations materialized at their escape
};

/// The PEA phase: virtual-object propagation (load forwarding), scalar
/// replacement of never-escaping allocations, and lazy materialization
/// (sinking New + initializer stores into the single dominated block that
/// holds every escape). Runs inside the standard cleanup pipeline after
/// duplication, where it harvests the opportunities the Simulator
/// predicted.
class PartialEscapePhase : public Phase {
public:
  /// \p ClassTable supplies field counts; pass null to disable virtual-
  /// object tracking (scalar replacement and sinking still run).
  explicit PartialEscapePhase(const Module *ClassTable = nullptr)
      : ClassTable(ClassTable) {}

  const char *name() const override { return "partial-escape"; }
  bool run(Function &F) override;

  /// As run(), reporting per-invocation statistics into \p Stats.
  bool run(Function &F, PartialEscapeStats &Stats);

private:
  const Module *ClassTable;
};

} // namespace dbds

#endif // DBDS_OPTS_PARTIALESCAPE_H
