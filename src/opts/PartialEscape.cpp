//===- opts/PartialEscape.cpp - Partial escape analysis --------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Three cooperating transforms over per-allocation virtual object state
// (paper §5.2, after Stadler's partial escape analysis):
//
//  1. Virtual propagation: along the dominator tree, within extended basic
//     blocks, every allocation is virtual from its definition to its first
//     true escape *on that path*. While virtual, its field values are
//     exactly known (zero-initialized, updated by stores into it), so
//     field loads forward even when the allocation escapes further down —
//     the flow sensitivity plain ReadElimination lacks. An escape on one
//     branch does not poison the sibling branch: state is copied, not
//     shared, into dominator children.
//
//  2. Scalar replacement: an allocation that never escapes and whose loads
//     all forwarded away is held alive only by its own initializer stores;
//     both die together.
//
//  3. Lazy materialization (allocation sinking): when every escape of an
//     allocation sits in one block strictly dominated by its definition,
//     the allocation and its initializer stores are re-emitted at the top
//     of that block — paths that never reach the escape never allocate.
//     Restricted to loop-free regions: re-materializing inside a loop the
//     definition is not part of would change how many objects exist.
//
// Merges drop all virtual state, exactly like read elimination: a merge
// can be reached along paths with different escape histories. That makes
// this the optimization duplication unlocks — once DBDS copies the merge
// into a predecessor, the phi escape disappears and the allocation stays
// virtual (Listing 3); the Simulator prices that as AllocationSinks /
// PartialEscapes opportunities.
//
//===----------------------------------------------------------------------===//

#include "opts/PartialEscape.h"

#include "analysis/DominatorTree.h"
#include "analysis/Loops.h"
#include "telemetry/Counters.h"
#include "telemetry/Metrics.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace dbds;

DBDS_COUNTER(pea, allocations_tracked);
DBDS_COUNTER(pea, loads_forwarded);
DBDS_COUNTER(pea, stores_eliminated);
DBDS_COUNTER(pea, allocs_scalar_replaced);
DBDS_COUNTER(pea, allocs_sunk);
DBDS_HISTOGRAM(pea, virtualized_allocs, Count, Deterministic);

bool dbds::useEscapesAllocation(const NewInst *New, const Instruction *User) {
  switch (User->getOpcode()) {
  case Opcode::LoadField:
    // Reading a field of the object reveals a field value, never the
    // object itself.
    return cast<LoadFieldInst>(User)->getObject() != New;
  case Opcode::StoreField: {
    auto *Store = cast<StoreFieldInst>(User);
    // Storing *into* the object is fine; storing the object as a value
    // publishes it — including storing it into itself.
    return Store->getValue() == New || Store->getObject() != New;
  }
  // Explicit per-opcode classification: both call flavors pass the object
  // to opaque code, and a phi forwards it onto the merged path — all
  // escapes, treated uniformly with return/compare/arithmetic below.
  case Opcode::Call:
  case Opcode::Invoke:
  case Opcode::Phi:
    return true;
  default:
    return true; // return, comparison, arithmetic operand, ...
  }
}

bool dbds::allocationDoesNotEscape(NewInst *New) {
  for (Instruction *User : New->users())
    if (useEscapesAllocation(New, User))
      return false;
  return true;
}

namespace {

/// Virtual state of one allocation on the current path: exact field
/// values from definition to first escape.
struct VirtualObject {
  SmallVector<Instruction *, 4> Fields;
};

class PEADriver {
public:
  PEADriver(Function &F, const DominatorTree &DT, const LoopInfo &LI,
            const Module *ClassTable, PartialEscapeStats &Stats)
      : F(F), DT(DT), LI(LI), ClassTable(ClassTable), Stats(Stats) {}

  bool run() {
    PathState Entry;
    visit(F.getEntry(), Entry);
    scalarReplaceAndSink();
    return Changed;
  }

private:
  using PathState = std::unordered_map<NewInst *, VirtualObject>;

  void visit(Block *B, PathState State) {
    // A merge can be reached along paths with different escape histories:
    // every object is conservatively materialized there. (Loop headers
    // are merges via their back edge.)
    if (B->getNumPreds() >= 2 ||
        (DT.getIdom(B) && B->getNumPreds() == 1 &&
         B->preds()[0] != DT.getIdom(B)))
      State.clear();

    SmallVector<Instruction *, 16> Insts(B->begin(), B->end());
    for (Instruction *I : Insts) {
      if (I->getBlock() != B)
        continue; // removed by an earlier forward in this walk
      if (auto *New = dyn_cast<NewInst>(I)) {
        if (!ClassTable)
          continue;
        VirtualObject &VO = State[New];
        VO.Fields.clear();
        unsigned NumFields = ClassTable->getClass(New->getClassId()).NumFields;
        Instruction *Zero = F.constant(0);
        for (unsigned Field = 0; Field != NumFields; ++Field)
          VO.Fields.push_back(Zero);
        if (EverTracked.insert(New).second) {
          ++Stats.AllocationsTracked;
          ++allocations_tracked;
        }
        continue;
      }
      if (auto *Load = dyn_cast<LoadFieldInst>(I)) {
        auto *Obj = dyn_cast<NewInst>(Load->getObject());
        auto It = Obj ? State.find(Obj) : State.end();
        if (It == State.end())
          continue;
        if (Load->getFieldIndex() >= It->second.Fields.size()) {
          State.erase(It); // out-of-range access: stop reasoning about it
          continue;
        }
        Load->replaceAllUsesWith(It->second.Fields[Load->getFieldIndex()]);
        B->remove(Load);
        Changed = true;
        ++Stats.LoadsForwarded;
        ++loads_forwarded;
        continue;
      }
      if (auto *Store = dyn_cast<StoreFieldInst>(I)) {
        // Value position first: storing a virtual object publishes it.
        if (auto *V = dyn_cast<NewInst>(Store->getValue()))
          State.erase(V);
        auto *Obj = dyn_cast<NewInst>(Store->getObject());
        auto It = Obj ? State.find(Obj) : State.end();
        if (It != State.end()) {
          if (Store->getFieldIndex() < It->second.Fields.size())
            It->second.Fields[Store->getFieldIndex()] = Store->getValue();
          else
            State.erase(It);
        }
        continue;
      }
      // Everything else — calls, phis, returns, comparisons — escapes any
      // virtual object it touches. Objects it does not touch stay virtual
      // even across opaque calls: unescaped means unreachable from the
      // callee.
      for (Instruction *Op : I->operands())
        if (auto *N = dyn_cast<NewInst>(Op))
          if (useEscapesAllocation(N, I))
            State.erase(N);
    }

    for (Block *Child : DT.children(B))
      visit(Child, State); // copied: branch-local escape histories
  }

  /// Post-walk transforms over whole-function use lists. Instruction-level
  /// only; the dominator tree and loop info stay valid throughout.
  void scalarReplaceAndSink() {
    SmallVector<NewInst *, 8> Allocs;
    for (Block *B : F.blocks())
      for (Instruction *I : *B)
        if (auto *New = dyn_cast<NewInst>(I))
          Allocs.push_back(New);
    for (NewInst *New : Allocs)
      if (!tryScalarReplace(New))
        trySink(New);
  }

  /// Deletes \p New and its initializer stores when nothing else remains:
  /// the allocation never materialized anywhere.
  bool tryScalarReplace(NewInst *New) {
    SmallVector<StoreFieldInst *, 4> Stores;
    for (Instruction *User : New->users()) {
      if (useEscapesAllocation(New, User))
        return false;
      auto *Store = dyn_cast<StoreFieldInst>(User);
      if (!Store)
        return false; // a surviving load still reads a field
      Stores.push_back(Store);
    }
    for (StoreFieldInst *Store : Stores) {
      Store->getBlock()->remove(Store);
      ++Stats.StoresEliminated;
      ++stores_eliminated;
    }
    New->getBlock()->remove(New);
    Changed = true;
    ++Stats.AllocsScalarReplaced;
    ++allocs_scalar_replaced;
    return true;
  }

  /// Lazy materialization: when every escape of \p New sits in one block
  /// strictly dominated by its definition, re-emit the allocation and its
  /// initializer stores there.
  bool trySink(NewInst *New) {
    Block *Home = New->getBlock();
    if (LI.loopDepth(Home) != 0)
      return false;
    Block *Sink = nullptr;
    SmallVector<StoreFieldInst *, 4> InitStores;
    for (Instruction *User : New->users()) {
      if (auto *Store = dyn_cast<StoreFieldInst>(User);
          Store && !useEscapesAllocation(New, Store)) {
        if (Store->getBlock() != Home)
          return false; // initializers must move as one unit from home
        InitStores.push_back(Store);
        continue;
      }
      if (!useEscapesAllocation(New, User))
        return false; // a surviving load would read the moved object early
      if (isa<PhiInst>(User))
        return false; // the use sits on the incoming edge, not in a block
      Block *UB = User->getBlock();
      if (!UB || (Sink && Sink != UB))
        return false;
      Sink = UB;
    }
    if (!Sink || Sink == Home || !DT.isReachable(Sink) ||
        !DT.dominates(Home, Sink) || LI.loopDepth(Sink) != 0)
      return false;

    // Replay the initializers in their original program order at the top
    // of the escape block; every stored value was defined in a block
    // dominating Home, so it dominates Sink as well.
    std::sort(InitStores.begin(), InitStores.end(),
              [&](StoreFieldInst *A, StoreFieldInst *B) {
                return Home->indexOf(A) < Home->indexOf(B);
              });
    unsigned Idx = 0;
    for (Instruction *I : *Sink) {
      if (!isa<PhiInst>(I))
        break;
      ++Idx;
    }
    auto *Materialized = F.create<NewInst>(New->getClassId());
    Sink->insert(Idx++, Materialized);
    for (StoreFieldInst *Store : InitStores)
      Sink->insert(Idx++, F.create<StoreFieldInst>(Materialized,
                                                   Store->getFieldIndex(),
                                                   Store->getValue()));
    for (StoreFieldInst *Store : InitStores)
      Home->remove(Store);
    New->replaceAllUsesWith(Materialized);
    Home->remove(New);
    Changed = true;
    ++Stats.AllocsSunk;
    ++allocs_sunk;
    return true;
  }

  Function &F;
  const DominatorTree &DT;
  const LoopInfo &LI;
  const Module *ClassTable;
  PartialEscapeStats &Stats;
  std::unordered_set<NewInst *> EverTracked;
  bool Changed = false;
};

} // namespace

bool PartialEscapePhase::run(Function &F) {
  PartialEscapeStats Stats;
  return run(F, Stats);
}

bool PartialEscapePhase::run(Function &F, PartialEscapeStats &Stats) {
  DominatorTree DT(F);
  LoopInfo LI(F, DT);
  PEADriver Driver(F, DT, LI, ClassTable, Stats);
  bool DidChange = Driver.run();
  // One deterministic sample per run that saw allocations: how many were
  // virtualized away (scalar-replaced) or materialized lazily (sunk).
  // Purely IR-derived, so byte-identical across --jobs levels.
  if (Stats.AllocationsTracked != 0)
    virtualized_allocs.record(Stats.AllocsScalarReplaced + Stats.AllocsSunk);
  return DidChange;
}
