//===- opts/Inliner.h - Function inlining ------------------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inlines direct invokes of module functions — the front-end step paper
/// §5.1 lists before the high-level optimizations ("inlining and partial
/// escape analysis"). Inlining is what feeds DBDS its richest merges: a
/// callee's control flow lands inside the caller, where duplication can
/// specialize it per call path.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_OPTS_INLINER_H
#define DBDS_OPTS_INLINER_H

#include "ir/Function.h"

namespace dbds {

/// Inlining policy knobs.
struct InlinerConfig {
  /// Callees above this size estimate are not inlined.
  uint64_t MaxCalleeSize = 256;
  /// Stop growing the caller past this size estimate.
  uint64_t MaxCallerSize = 16384;
  /// Rounds of inlining (an inlined body may itself contain invokes).
  unsigned MaxRounds = 3;
};

/// Inlines eligible invokes of \p M's functions into \p Caller:
/// non-recursive direct calls to known functions within the size budget.
/// Returns the number of call sites inlined. Leaves the caller
/// verifier-clean.
unsigned inlineInvokes(Function &Caller, const Module &M,
                       const InlinerConfig &Config = {});

} // namespace dbds

#endif // DBDS_OPTS_INLINER_H
