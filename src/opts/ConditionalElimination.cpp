//===- opts/ConditionalElimination.cpp - Branch-aware folding --------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Walks the dominator tree depth-first. Descending into a branch successor
// that is dominated by the branch edge, the condition's truth value is
// recorded and the compared operands' stamps are refined; instructions in
// the subtree then fold against the refined stamps. This is the paper's
// conditional-elimination opportunity (Listing 1/2): after duplication the
// copied comparison sits in a refined scope and folds to a constant.
//
//===----------------------------------------------------------------------===//

#include "analysis/DominatorTree.h"
#include "opts/Canonicalize.h"
#include "opts/Phase.h"
#include "opts/ScopedStamps.h"

using namespace dbds;

namespace {

class CEDriver {
public:
  CEDriver(Function &F, const DominatorTree &DT)
      : F(F), DT(DT), Scope(Stamps) {}

  bool run() {
    visit(F.getEntry());
    return Changed;
  }

private:
  void visit(Block *B) {
    ScopedStamps::UndoLog Undo;

    // Refinement from the dominating branch: applies when B is a branch
    // successor whose only predecessor is the branching block.
    if (Block *Idom = DT.getIdom(B)) {
      if (B->getNumPreds() == 1 && B->preds()[0] == Idom) {
        if (auto *If = dyn_cast<IfInst>(Idom->getTerminator())) {
          if (If->getTrueSucc() == B)
            Scope.refineByCondition(If->getCondition(), true, Undo);
          else if (If->getFalseSucc() == B)
            Scope.refineByCondition(If->getCondition(), false, Undo);
        }
      }
    }

    // Fold instructions against refined stamps.
    auto Lookup = [this](Instruction *I) { return Scope.get(I); };
    SmallVector<Instruction *, 16> Insts(B->begin(), B->end());
    for (Instruction *I : Insts) {
      if (I->getBlock() != B || I->isTerminator() || isa<PhiInst>(I))
        continue;
      FoldOutcome Outcome = tryCanonicalize(I, identityResolver, Lookup, F);
      if (!Outcome)
        continue;
      // Refined ranges can enable rewrites plain canonicalization cannot
      // see, e.g. x/8 -> x>>3 under a dominating x >= 0.
      if (Outcome.IsNew)
        B->insert(B->indexOf(I), Outcome.Replacement);
      I->replaceAllUsesWith(Outcome.Replacement);
      B->remove(I);
      Changed = true;
    }

    // Replace a branch condition whose value the scope knows. SimplifyCFG
    // folds the branch afterwards.
    if (auto *If = dyn_cast<IfInst>(B->getTerminator())) {
      Instruction *Cond = If->getCondition();
      if (!isa<ConstantInst>(Cond)) {
        if (auto Known = Scope.get(Cond).asConstant()) {
          If->setOperand(0, F.constant(*Known));
          Changed = true;
        }
      }
    }

    for (Block *Child : DT.children(B))
      visit(Child);

    Scope.undo(Undo);
  }

  Function &F;
  const DominatorTree &DT;
  StampMap Stamps;
  ScopedStamps Scope;
  bool Changed = false;
};

} // namespace

bool ConditionalElimination::run(Function &F) {
  DominatorTree DT(F);
  CEDriver Driver(F, DT);
  return Driver.run();
}
