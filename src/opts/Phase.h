//===- opts/Phase.h - Optimization phases ------------------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimization phases of paper §2, each expressed over the AC /
/// action-step primitives in opts/Canonicalize.h, plus the cleanup phases
/// (DCE, CFG simplification) and the PhaseManager fixpoint driver. These
/// are the "partial optimizations" DBDS applies after duplication and the
/// full pipeline the backtracking baseline runs per candidate.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_OPTS_PHASE_H
#define DBDS_OPTS_PHASE_H

#include "ir/Function.h"

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace dbds {

class CancellationToken;
class CompileBudget;
class DiagnosticEngine;
class FaultInjector;
class Linter;
class Module;

/// Behavioral phase-effect oracle for PhaseManager audit mode: compares
/// the pre-phase snapshot against the phase's output (typically by
/// interpreting both on a shared input set) and returns false on
/// divergence, filling \p Detail with a description. Injected as a
/// callback so the optimizer does not link against the vm; see
/// tooling/LintHarness.h for the interpreter-backed implementation.
using AuditOracle = std::function<bool(
    const Function &Before, Function &After, std::string &Detail)>;

/// An IR-to-IR transformation over one compilation unit.
class Phase {
public:
  virtual ~Phase();

  /// Human-readable phase name (diagnostics and timing).
  virtual const char *name() const = 0;

  /// Runs the phase. Returns true if the IR changed. Must leave the
  /// function in a verifier-clean state.
  virtual bool run(Function &F) = 0;
};

/// Constant folding, strength reduction, algebraic identities, and phi
/// copy propagation (paper §2 "Constant Folding", §4.1 strength-reduction
/// example). Local, iterates to an in-phase fixpoint.
class Canonicalizer : public Phase {
public:
  const char *name() const override { return "canonicalize"; }
  bool run(Function &F) override;
};

/// Conditional elimination (paper §2, after Stadler et al.): walks the
/// dominator tree, refines stamps with dominating branch conditions, and
/// folds comparisons (and any arithmetic the refined ranges decide).
class ConditionalElimination : public Phase {
public:
  const char *name() const override { return "conditional-elimination"; }
  bool run(Function &F) override;
};

/// Read elimination (paper §2): forwards stored/loaded field values within
/// extended basic blocks along the dominator tree; merge blocks reset
/// memory knowledge (duplication is exactly what turns partially redundant
/// reads into fully redundant ones, Listing 5/6). Knows fresh allocations'
/// fields are zero and keeps them alive across opaque calls.
class ReadElimination : public Phase {
public:
  /// \p ClassTable supplies field counts for zero-initialized fresh
  /// allocations; pass null to disable freshness reasoning.
  explicit ReadElimination(const Module *ClassTable = nullptr)
      : ClassTable(ClassTable) {}

  const char *name() const override { return "read-elimination"; }
  bool run(Function &F) override;

private:
  const Module *ClassTable;
};

/// Dominator-based value numbering (Briggs/Cooper/Simpson, the paper's
/// [5]): replaces pure recomputations with equal values available in a
/// dominator. Mops up the partial copies duplication leaves behind.
class ValueNumbering : public Phase {
public:
  const char *name() const override { return "value-numbering"; }
  bool run(Function &F) override;
};

/// Dead code elimination by mark-and-sweep, including allocation sinking /
/// scalar replacement (paper §2 PEA): an allocation whose remaining uses
/// are only stores into it is deleted together with those stores.
class DeadCodeElimination : public Phase {
public:
  const char *name() const override { return "dce"; }
  bool run(Function &F) override;
};

/// Control-flow cleanup: folds constant branches, prunes unreachable
/// blocks, threads empty forwarding blocks, and merges straight-line block
/// pairs. Collapsed merges are how a fully duplicated merge block
/// disappears.
class SimplifyCFG : public Phase {
public:
  const char *name() const override { return "simplify-cfg"; }
  bool run(Function &F) override;
};

/// Runs a pipeline of phases to a fixpoint (bounded rounds), optionally
/// verifying after every phase.
///
/// Verification is transactional by default: each verified phase runs
/// against a pre-phase snapshot of the function, and a phase that leaves
/// the IR invalid is rolled back, quarantined for that function, and
/// recorded as a diagnostic — the pipeline keeps going with the remaining
/// phases. The legacy die-on-first-violation behavior survives behind the
/// opt-in fail-fast switch (drivers expose it as --fail-fast).
class PhaseManager {
public:
  explicit PhaseManager(bool VerifyAfterEachPhase = true)
      : Verify(VerifyAfterEachPhase) {}

  /// Appends a phase to the pipeline.
  void add(std::unique_ptr<Phase> P) { Phases.push_back(std::move(P)); }

  /// Runs all phases repeatedly until none reports a change (at most
  /// \p MaxRounds rounds). Returns true if anything changed.
  bool run(Function &F, unsigned MaxRounds = 4);

  /// The standard cleanup pipeline used after duplication and by the
  /// baseline configuration: canonicalize, CE, read elimination, DCE,
  /// simplify-cfg. \p ClassTable enables freshness reasoning in read
  /// elimination.
  static PhaseManager standardPipeline(bool Verify = true,
                                       const Module *ClassTable = nullptr);

  // ---- Fault tolerance -------------------------------------------------

  /// When true, a verifier failure aborts the process (the legacy
  /// behavior) instead of rolling the function back.
  void setFailFast(bool B) { FailFast = B; }

  /// Optional sink for rollback/budget diagnostics (not owned).
  void setDiagnostics(DiagnosticEngine *D) { Diags = D; }

  /// Optional deterministic fault source exercising the rollback path
  /// (not owned). Only consulted when verification is enabled.
  void setFaultInjector(FaultInjector *FI) { Injector = FI; }

  /// Optional per-function wall-clock budget (not owned). When it expires,
  /// fixpoint re-iteration stops after the current round and the budget is
  /// degraded to DegradationLevel::NoFixpoint.
  void setBudget(CompileBudget *B) { Budget = B; }

  /// Optional cooperative cancellation token (not owned). Checked at the
  /// top of every round and before every phase; once it fires, the
  /// pipeline stops at that checkpoint (the function is always left whole
  /// — phases are never interrupted mid-transformation).
  void setCancellation(CancellationToken *C) { Cancel = C; }

  /// True if the last run() stopped early because the cancellation token
  /// fired.
  bool wasCancelled() const { return Cancelled; }

  /// Optional set of phase names disabled by the service's per-phase
  /// circuit breaker (not owned). Disabled phases are skipped like
  /// quarantined ones, but module-wide rather than per-function.
  void setDisabledPhases(const std::unordered_set<std::string> *D) {
    DisabledPhases = D;
  }

  // ---- Phase-effect auditing -------------------------------------------

  /// Enables audit mode with \p L (not owned): every phase's output is
  /// linted and diffed against the pre-phase report, and any *new*
  /// error-severity finding is attributed to that phase — the function is
  /// rolled back, the phase quarantined, and the quarantine diagnostic
  /// names the offending phase and the violated rules. Findings that
  /// predate the phase are never blamed on it. Supersedes the plain
  /// verifier check while set.
  void setAuditLinter(const Linter *L) { Audit = L; }

  /// Optional behavioral oracle for audit mode (see AuditOracle): runs
  /// after a phase passes the static lint diff and catches structurally
  /// valid but semantically wrong transforms (the SabotagePhase class of
  /// defect, which no static check can see). Divergence rolls the phase
  /// back like a lint violation.
  void setAuditOracle(AuditOracle O) { Oracle = std::move(O); }

  /// Phases rolled back over the manager's lifetime.
  unsigned rollbackCount() const { return Rollbacks; }

  /// Names of the phases quarantined over the manager's lifetime, one
  /// entry per rollback, in occurrence order. The service's circuit
  /// breaker folds these per-task lists in function-index order, so its
  /// trip decisions stay schedule-independent.
  const std::vector<std::string> &quarantineEvents() const {
    return QuarantineEvents;
  }

  /// True if \p PhaseIdx is quarantined for the function named \p Fn.
  bool isQuarantined(const std::string &Fn, unsigned PhaseIdx) const {
    auto It = Quarantined.find(Fn);
    return It != Quarantined.end() && It->second.count(PhaseIdx) != 0;
  }

private:
  std::vector<std::unique_ptr<Phase>> Phases;
  bool Verify;
  bool FailFast = false;
  DiagnosticEngine *Diags = nullptr;
  FaultInjector *Injector = nullptr;
  CompileBudget *Budget = nullptr;
  CancellationToken *Cancel = nullptr;
  const std::unordered_set<std::string> *DisabledPhases = nullptr;
  const Linter *Audit = nullptr;
  AuditOracle Oracle;
  unsigned Rollbacks = 0;
  bool Cancelled = false;
  std::vector<std::string> QuarantineEvents;
  /// Function name -> indices of phases that broke that function once and
  /// are skipped for it from then on.
  std::unordered_map<std::string, std::unordered_set<unsigned>> Quarantined;
};

} // namespace dbds

#endif // DBDS_OPTS_PHASE_H
