//===- opts/Inliner.cpp - Function inlining ---------------------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Per call site: split the invoking block around the invoke, clone the
// callee's (reachable) blocks into the caller with parameters mapped to
// the arguments, route every callee return into the continuation block
// (joining return values with a phi when there are several), and replace
// the invoke's uses with the returned value.
//
//===----------------------------------------------------------------------===//

#include "opts/Inliner.h"

#include "analysis/DominatorTree.h"
#include "ir/Block.h"

#include <unordered_map>

using namespace dbds;

namespace {

/// Clones the callee body into the caller. Returns the entry clone block;
/// fills \p ReturnEdges with (cloned return block, returned value or null).
Block *cloneCalleeInto(
    Function &Caller, Function &Callee, ArrayRef<Instruction *> Args,
    std::vector<std::pair<Block *, Instruction *>> &ReturnEdges) {
  std::unordered_map<const Block *, Block *> BlockMap;
  std::vector<Block *> RPO = computeRPO(Callee);
  for (Block *B : RPO)
    BlockMap[B] = Caller.createBlock();

  std::unordered_map<const Instruction *, Instruction *> InstMap;
  auto mapped = [&InstMap](Instruction *V) {
    auto It = InstMap.find(V);
    assert(It != InstMap.end() && "callee operand not cloned yet");
    return It->second;
  };

  for (Block *B : RPO) {
    Block *NB = BlockMap.at(B);
    for (Instruction *I : *B) {
      Instruction *NI = nullptr;
      switch (I->getOpcode()) {
      case Opcode::Constant: {
        auto *C = cast<ConstantInst>(I);
        NI = C->isNull() ? Caller.nullConstant()
                         : Caller.constant(C->getValue());
        InstMap[I] = NI;
        continue; // uniqued into the caller entry; nothing to append
      }
      case Opcode::Param:
        // Parameters become the call arguments.
        InstMap[I] = Args[cast<ParamInst>(I)->getIndex()];
        continue;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
        NI = Caller.create<BinaryInst>(I->getOpcode(),
                                       mapped(I->getOperand(0)),
                                       mapped(I->getOperand(1)));
        break;
      case Opcode::Neg:
      case Opcode::Not:
        NI = Caller.create<UnaryInst>(I->getOpcode(),
                                      mapped(I->getOperand(0)));
        break;
      case Opcode::Cmp:
        NI = Caller.create<CompareInst>(cast<CompareInst>(I)->getPredicate(),
                                        mapped(I->getOperand(0)),
                                        mapped(I->getOperand(1)));
        break;
      case Opcode::Phi:
        NI = Caller.create<PhiInst>(I->getType()); // inputs in pass 2
        break;
      case Opcode::New:
        NI = Caller.create<NewInst>(cast<NewInst>(I)->getClassId());
        break;
      case Opcode::LoadField:
        NI = Caller.create<LoadFieldInst>(
            mapped(I->getOperand(0)),
            cast<LoadFieldInst>(I)->getFieldIndex());
        break;
      case Opcode::StoreField:
        NI = Caller.create<StoreFieldInst>(
            mapped(I->getOperand(0)),
            cast<StoreFieldInst>(I)->getFieldIndex(),
            mapped(I->getOperand(1)));
        break;
      case Opcode::Call: {
        SmallVector<Instruction *, 4> CallArgs;
        for (Instruction *Arg : I->operands())
          CallArgs.push_back(mapped(Arg));
        NI = Caller.create<CallInst>(
            cast<CallInst>(I)->getCalleeId(),
            ArrayRef<Instruction *>(CallArgs.begin(), CallArgs.size()));
        break;
      }
      case Opcode::Invoke: {
        SmallVector<Instruction *, 4> CallArgs;
        for (Instruction *Arg : I->operands())
          CallArgs.push_back(mapped(Arg));
        NI = Caller.create<InvokeInst>(
            cast<InvokeInst>(I)->getCalleeName(),
            ArrayRef<Instruction *>(CallArgs.begin(), CallArgs.size()));
        break;
      }
      case Opcode::If: {
        auto *If = cast<IfInst>(I);
        auto *NIf = Caller.create<IfInst>(mapped(If->getCondition()),
                                          BlockMap.at(If->getTrueSucc()),
                                          BlockMap.at(If->getFalseSucc()));
        NIf->setTrueProbability(If->getTrueProbability());
        NI = NIf;
        break;
      }
      case Opcode::Jump:
        NI = Caller.create<JumpInst>(
            BlockMap.at(cast<JumpInst>(I)->getTarget()));
        break;
      case Opcode::Return: {
        // Returns become edges into the continuation (wired by caller).
        auto *Ret = cast<ReturnInst>(I);
        ReturnEdges.push_back(
            {NB, Ret->hasValue() ? mapped(Ret->getValue()) : nullptr});
        InstMap[I] = nullptr;
        continue; // terminator appended by the caller of this helper
      }
      }
      assert(NI && "unhandled opcode while inlining");
      InstMap[I] = NI;
      NB->append(NI);
    }
  }

  // Pass 2: predecessor lists and phi inputs (mirrors Function::clone).
  for (Block *B : RPO) {
    Block *NB = BlockMap.at(B);
    for (Block *P : B->preds())
      NB->addPred(BlockMap.at(P));
    auto OldPhis = B->phis();
    auto NewPhis = NB->phis();
    assert(OldPhis.size() == NewPhis.size() && "phi count mismatch");
    for (unsigned PhiIdx = 0; PhiIdx != OldPhis.size(); ++PhiIdx)
      for (Instruction *In : OldPhis[PhiIdx]->operands())
        NewPhis[PhiIdx]->appendInput(mapped(In));
  }

  return BlockMap.at(Callee.getEntry());
}

/// Inlines one invoke. Returns false when the site is ineligible.
bool inlineOneSite(Function &Caller, InvokeInst *Invoke, const Module &M,
                   const InlinerConfig &Config) {
  Function *Callee = M.getFunction(Invoke->getCalleeName());
  if (!Callee || Callee == &Caller)
    return false; // unknown or directly recursive
  if (Callee->getNumParams() != Invoke->getNumOperands())
    return false; // malformed site
  if (Callee->estimatedCodeSize() > Config.MaxCalleeSize)
    return false;
  if (Caller.estimatedCodeSize() + Callee->estimatedCodeSize() >
      Config.MaxCallerSize)
    return false;

  Block *Site = Invoke->getBlock();
  unsigned SiteIdx = Site->indexOf(Invoke);

  // Split: everything after the invoke moves to the continuation; the old
  // terminator's edges now originate from the continuation.
  Block *Continuation = Caller.createBlock();
  Site->transferTailTo(SiteIdx + 1, Continuation);
  for (Block *Succ : Continuation->succs())
    for (unsigned Idx = 0, E = Succ->getNumPreds(); Idx != E; ++Idx)
      if (Succ->preds()[Idx] == Site)
        Succ->replacePred(Idx, Continuation);

  // Clone the callee; collect its return edges.
  SmallVector<Instruction *, 4> Args(Invoke->operands().begin(),
                                     Invoke->operands().end());
  std::vector<std::pair<Block *, Instruction *>> ReturnEdges;
  Block *CalleeEntry = cloneCalleeInto(
      Caller, *Callee, ArrayRef<Instruction *>(Args.begin(), Args.size()),
      ReturnEdges);
  assert(!ReturnEdges.empty() && "callee without reachable return");

  // Remove the invoke and enter the callee.
  Instruction *ReturnValue = nullptr;
  if (ReturnEdges.size() == 1 && ReturnEdges[0].second) {
    ReturnValue = ReturnEdges[0].second;
  } else if (ReturnEdges.size() > 1) {
    auto *Phi = Caller.create<PhiInst>(Type::Int);
    Continuation->insertPhi(Phi);
    bool AllHaveValues = true;
    for (auto &[RetBlock, Value] : ReturnEdges)
      AllHaveValues &= Value != nullptr;
    if (AllHaveValues) {
      for (auto &[RetBlock, Value] : ReturnEdges)
        Phi->appendInput(Value);
      ReturnValue = Phi;
    } else {
      Continuation->remove(Phi);
    }
  }
  if (!ReturnValue && Invoke->hasUsers())
    ReturnValue = Caller.constant(0); // void-returning callee: invoke is 0

  if (Invoke->hasUsers())
    Invoke->replaceAllUsesWith(ReturnValue);
  Site->remove(Invoke);
  Site->append(Caller.create<JumpInst>(CalleeEntry));
  CalleeEntry->addPred(Site);

  // Wire every return edge into the continuation.
  for (auto &[RetBlock, Value] : ReturnEdges) {
    (void)Value;
    RetBlock->append(Caller.create<JumpInst>(Continuation));
    Continuation->addPred(RetBlock);
  }
  return true;
}

} // namespace

unsigned dbds::inlineInvokes(Function &Caller, const Module &M,
                             const InlinerConfig &Config) {
  unsigned Inlined = 0;
  // Each round snapshots the current call sites; sites introduced by an
  // inlined body are handled by the next round (bounded nesting depth).
  for (unsigned Round = 0; Round != Config.MaxRounds; ++Round) {
    SmallVector<InvokeInst *, 8> Sites;
    for (Block *B : Caller.blocks())
      for (Instruction *I : *B)
        if (auto *Invoke = dyn_cast<InvokeInst>(I))
          Sites.push_back(Invoke);
    if (Sites.empty())
      break;
    bool Progress = false;
    for (InvokeInst *Site : Sites) {
      if (inlineOneSite(Caller, Site, M, Config)) {
        ++Inlined;
        Progress = true;
      }
    }
    if (!Progress)
      break;
  }
  return Inlined;
}
