//===- opts/DeadCodeElimination.cpp - Mark-and-sweep DCE -------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Liveness roots are terminators, calls, and stores into objects that may
// escape. A store into a non-escaping allocation is only a root if the
// allocation itself becomes live (via a surviving load or escape); an
// allocation kept alive by nothing but its own initializing stores dies
// together with them — that is scalar replacement after partial escape
// analysis (paper Listing 3/4): once duplication removes the phi escape,
// the allocation sinks away here.
//
//===----------------------------------------------------------------------===//

#include "opts/PartialEscape.h"
#include "opts/Phase.h"

#include <unordered_set>
#include <vector>

using namespace dbds;

bool DeadCodeElimination::run(Function &F) {
  std::unordered_set<Instruction *> Live;
  std::vector<Instruction *> Worklist;

  auto markLive = [&](Instruction *I) {
    if (Live.insert(I).second)
      Worklist.push_back(I);
  };

  // Initial roots. Stores into candidate-sinkable allocations are held
  // back; they join the worklist only if their allocation becomes live.
  std::vector<StoreFieldInst *> HeldBackStores;
  for (Block *B : F.blocks()) {
    for (Instruction *I : *B) {
      if (I->isTerminator() || isa<CallInst, InvokeInst>(I)) {
        markLive(I);
        continue;
      }
      if (auto *Store = dyn_cast<StoreFieldInst>(I)) {
        auto *New = dyn_cast<NewInst>(Store->getObject());
        if (New && allocationDoesNotEscape(New)) {
          HeldBackStores.push_back(Store);
          continue;
        }
        markLive(Store);
      }
    }
  }

  // Propagate liveness through operands; re-arm held-back stores whose
  // allocation became live.
  while (true) {
    while (!Worklist.empty()) {
      Instruction *I = Worklist.back();
      Worklist.pop_back();
      for (Instruction *Op : I->operands())
        markLive(Op);
    }
    bool Rearmed = false;
    for (StoreFieldInst *Store : HeldBackStores) {
      if (!Live.count(Store) && Live.count(Store->getObject())) {
        markLive(Store);
        Rearmed = true;
      }
    }
    if (!Rearmed)
      break;
  }

  // Sweep. Collect first (removal edits block lists), then detach; an
  // unmarked instruction is never an operand of a marked one.
  bool Changed = false;
  for (Block *B : F.blocks()) {
    SmallVector<Instruction *, 16> Dead;
    for (Instruction *I : *B)
      if (!Live.count(I))
        Dead.push_back(I);
    // Remove uses-last: later instructions use earlier ones.
    for (auto It = Dead.end(); It != Dead.begin();) {
      --It;
      Instruction *I = *It;
      // A dead value may still be listed as operand of other dead
      // instructions; Block::remove detaches operands, so removing in
      // reverse program order keeps use lists exact.
      B->remove(I);
      Changed = true;
    }
  }
  return Changed;
}
