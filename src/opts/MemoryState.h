//===- opts/MemoryState.h - Field availability map --------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory knowledge read elimination and the DBDS simulation tier
/// track: which (object, field) locations hold which SSA value, plus the
/// set of fresh (never-escaping) allocations whose fields are exactly
/// known. Value-copyable so traversals can fork per dominator-tree child.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_OPTS_MEMORYSTATE_H
#define DBDS_OPTS_MEMORYSTATE_H

#include "ir/Function.h"

#include <unordered_map>
#include <unordered_set>

namespace dbds {

/// A flow-sensitive (object, field) -> value map with freshness tracking.
/// (The escape predicate backing the freshness reasoning lives in
/// opts/PartialEscape.h.)
class MemoryState {
public:
  /// Forgets everything (used at merge points).
  void clear();

  /// Registers a fresh allocation: if it provably never escapes, its
  /// \p NumFields fields are known to be zero and opaque calls cannot
  /// touch it.
  void recordAllocation(NewInst *New, unsigned NumFields);

  /// Applies a store: kills may-alias entries, records the new value.
  void recordStore(Instruction *Object, unsigned Field, Instruction *Value);

  /// Records a performed load so later identical loads are redundant.
  void recordLoad(LoadFieldInst *Load);

  /// Records availability without any kill (reads do not invalidate).
  void recordAvailable(Instruction *Object, unsigned Field,
                       Instruction *Value);

  /// The value known to live at (\p Object, \p Field), or null.
  Instruction *lookup(Instruction *Object, unsigned Field) const;

  /// Applies an opaque call: kills everything except fresh allocations.
  void killForCall();

  bool isFresh(Instruction *Object) const {
    return Fresh.count(Object) != 0;
  }

private:
  struct KeyHash {
    size_t operator()(const std::pair<Instruction *, unsigned> &K) const {
      return std::hash<Instruction *>()(K.first) * 31 + K.second;
    }
  };

  std::unordered_map<std::pair<Instruction *, unsigned>, Instruction *,
                     KeyHash>
      Available;
  std::unordered_set<Instruction *> Fresh;
};

} // namespace dbds

#endif // DBDS_OPTS_MEMORYSTATE_H
