//===- opts/ValueNumbering.cpp - Dominator-based value numbering ----------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Dominator-based value numbering after Briggs, Cooper & Simpson (the
// paper's reference [5] for the dominator-tree traversals DBDS builds
// on): a scoped hash table over the dominator tree replaces a pure
// instruction with an equal-valued instruction computed in a dominator.
// Duplication creates exactly such pairs — the copies that do not fold
// completely often recompute values the predecessor already has — so this
// phase runs in the standard cleanup pipeline.
//
//===----------------------------------------------------------------------===//

#include "analysis/DominatorTree.h"
#include "opts/Phase.h"

#include <optional>
#include <unordered_map>

using namespace dbds;

namespace {

/// Structural key of a pure instruction: opcode, operands, and the
/// per-class immediate (predicate, field, ...). Commutative operations
/// are normalized by operand pointer order.
struct ValueKey {
  Opcode Op;
  uint32_t Extra;
  Instruction *LHS;
  Instruction *RHS;

  bool operator==(const ValueKey &Other) const {
    return Op == Other.Op && Extra == Other.Extra && LHS == Other.LHS &&
           RHS == Other.RHS;
  }
};

struct ValueKeyHash {
  size_t operator()(const ValueKey &K) const {
    size_t Hash = static_cast<size_t>(K.Op) * 0x9e3779b9;
    Hash ^= K.Extra + (Hash << 6);
    Hash ^= std::hash<Instruction *>()(K.LHS) + (Hash << 6);
    Hash ^= std::hash<Instruction *>()(K.RHS) + (Hash << 6);
    return Hash;
  }
};

/// Builds the key for \p I, or nullopt when the instruction is not
/// value-numberable (memory, control flow, identity-carrying ops).
std::optional<ValueKey> keyOf(Instruction *I) {
  switch (I->getOpcode()) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr: {
    auto *Bin = cast<BinaryInst>(I);
    Instruction *LHS = Bin->getLHS(), *RHS = Bin->getRHS();
    if (Bin->isCommutative() && RHS < LHS)
      std::swap(LHS, RHS);
    return ValueKey{I->getOpcode(), 0, LHS, RHS};
  }
  case Opcode::Neg:
  case Opcode::Not:
    return ValueKey{I->getOpcode(), 0, I->getOperand(0), nullptr};
  case Opcode::Cmp: {
    auto *Cmp = cast<CompareInst>(I);
    return ValueKey{Opcode::Cmp,
                    static_cast<uint32_t>(Cmp->getPredicate()),
                    Cmp->getLHS(), Cmp->getRHS()};
  }
  default:
    // Constants are uniqued already; params are unique per index but
    // never duplicated; loads/stores/calls/allocations carry identity or
    // memory state; phis are position-dependent.
    return std::nullopt;
  }
}

class VNDriver {
public:
  VNDriver(Function &F, const DominatorTree &DT) : F(F), DT(DT) {}

  bool run() {
    visit(F.getEntry());
    return Changed;
  }

private:
  void visit(Block *B) {
    std::vector<ValueKey> Inserted;
    SmallVector<Instruction *, 16> Insts(B->begin(), B->end());
    for (Instruction *I : Insts) {
      if (I->getBlock() != B)
        continue;
      auto Key = keyOf(I);
      if (!Key)
        continue;
      auto It = Available.find(*Key);
      if (It != Available.end()) {
        // An equal value is available in a dominator (or earlier in this
        // block): reuse it.
        I->replaceAllUsesWith(It->second);
        B->remove(I);
        Changed = true;
        continue;
      }
      Available.emplace(*Key, I);
      Inserted.push_back(*Key);
    }
    for (Block *Child : DT.children(B))
      visit(Child);
    for (const ValueKey &Key : Inserted)
      Available.erase(Key);
  }

  Function &F;
  const DominatorTree &DT;
  std::unordered_map<ValueKey, Instruction *, ValueKeyHash> Available;
  bool Changed = false;
};

} // namespace

bool ValueNumbering::run(Function &F) {
  DominatorTree DT(F);
  VNDriver Driver(F, DT);
  return Driver.run();
}
