//===- opts/ScopedStamps.cpp - Scoped stamp refinement ---------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "opts/ScopedStamps.h"

using namespace dbds;

void ScopedStamps::refine(Instruction *I, const Stamp &S, UndoLog &Undo) {
  Stamp Current = get(I);
  auto Met = Current.meet(S);
  if (!Met || *Met == Current)
    return; // contradictory (dead branch) or nothing new
  auto It = Overlay.find(I);
  Undo.push_back({I, It == Overlay.end()
                         ? std::nullopt
                         : std::optional<Stamp>(It->second)});
  if (It == Overlay.end())
    Overlay.emplace(I, *Met);
  else
    It->second = *Met;
}

void ScopedStamps::refineByCondition(Instruction *Cond, bool Holds,
                                     UndoLog &Undo) {
  refine(Cond, Stamp::exact(Holds ? 1 : 0), Undo);
  if (auto *Cmp = dyn_cast<CompareInst>(Cond)) {
    Instruction *LHS = Cmp->getLHS();
    Instruction *RHS = Cmp->getRHS();
    if (auto Refined = refineByCompare(Cmp->getPredicate(), get(LHS),
                                       get(RHS), Holds))
      refine(LHS, *Refined, Undo);
    if (auto Refined = refineByCompare(swapPredicate(Cmp->getPredicate()),
                                       get(RHS), get(LHS), Holds))
      refine(RHS, *Refined, Undo);
  }
}

void ScopedStamps::undo(const UndoLog &Undo) {
  for (auto It = Undo.rbegin(); It != Undo.rend(); ++It) {
    if (It->second)
      Overlay.insert_or_assign(It->first, *It->second);
    else
      Overlay.erase(It->first);
  }
}
