//===- opts/PhaseManager.cpp - Fixpoint pipeline driver --------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "opts/Phase.h"

#include <cstdio>
#include <cstdlib>

using namespace dbds;

bool PhaseManager::run(Function &F, unsigned MaxRounds) {
  bool Changed = false;
  for (unsigned Round = 0; Round != MaxRounds; ++Round) {
    bool RoundChanged = false;
    for (const auto &P : Phases) {
      bool PhaseChanged = P->run(F);
      RoundChanged |= PhaseChanged;
      if (Verify && PhaseChanged) {
        std::string Error = verifyFunction(F);
        if (!Error.empty()) {
          fprintf(stderr, "verifier failed after %s on @%s: %s\n", P->name(),
                  F.getName().c_str(), Error.c_str());
          abort();
        }
      }
    }
    Changed |= RoundChanged;
    if (!RoundChanged)
      break;
  }
  return Changed;
}

PhaseManager PhaseManager::standardPipeline(bool Verify,
                                            const Module *ClassTable) {
  PhaseManager PM(Verify);
  PM.add(std::make_unique<Canonicalizer>());
  PM.add(std::make_unique<ValueNumbering>());
  PM.add(std::make_unique<ConditionalElimination>());
  PM.add(std::make_unique<ReadElimination>(ClassTable));
  PM.add(std::make_unique<DeadCodeElimination>());
  PM.add(std::make_unique<SimplifyCFG>());
  return PM;
}
