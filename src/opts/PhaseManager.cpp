//===- opts/PhaseManager.cpp - Fixpoint pipeline driver --------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "analysis/Verifier.h"
#include "opts/PartialEscape.h"
#include "opts/Phase.h"
#include "support/Budget.h"
#include "support/Cancellation.h"
#include "support/Diagnostics.h"
#include "support/FaultInjector.h"
#include "support/Timer.h"
#include "telemetry/Counters.h"
#include "telemetry/Json.h"
#include "telemetry/Metrics.h"
#include "telemetry/Trace.h"

#include <cstdio>
#include <cstdlib>

using namespace dbds;

DBDS_COUNTER(phase_manager, phases_run);
DBDS_COUNTER(phase_manager, rounds_run);
DBDS_COUNTER(phase_manager, phase_rollbacks);
DBDS_COUNTER(phase_manager, phases_quarantined_skipped);
DBDS_COUNTER(phase_manager, phases_breaker_skipped);

bool dbds::corruptFunctionIR(Function &F, uint64_t Entropy) {
  // Preferred corruption: drop one phi input, breaking the phi/predecessor
  // alignment invariant. Always verifier-visible, always restorable.
  std::vector<PhiInst *> Phis;
  for (Block *B : F.blocks())
    for (PhiInst *Phi : B->phis())
      if (Phi->getNumInputs() != 0)
        Phis.push_back(Phi);
  if (!Phis.empty()) {
    Phis[Entropy % Phis.size()]->removeInput(0);
    return true;
  }
  // Fallback: strip a block's terminator.
  auto Blocks = F.blocks();
  for (unsigned Tried = 0; Tried != Blocks.size(); ++Tried) {
    Block *B = Blocks[(Entropy + Tried) % Blocks.size()];
    if (Instruction *Term = B->getTerminator()) {
      B->remove(Term);
      return true;
    }
  }
  return false;
}

bool PhaseManager::run(Function &F, unsigned MaxRounds) {
  bool Changed = false;
  // Snapshots (and therefore rollback) exist only in checking modes;
  // unverified pipelines keep their zero-overhead fast path. Audit mode
  // (setAuditLinter) implies checking even when plain verification is off.
  const bool Auditing = Audit != nullptr;
  const bool Checking = Verify || Auditing;
  const bool Transactional = Checking && !FailFast;

  TraceSession *TS = TraceSession::active();
  TraceSpan PipelineSpan(TS, "pipeline", "phase",
                         TS ? "\"function\":" + jsonString(F.getName())
                            : std::string());

  // Cancellation checkpoint: polls the token (deadline included) and, on
  // the first hit, records why the pipeline is stopping. Phases are never
  // interrupted mid-transformation, so the IR stays verifier-clean.
  Cancelled = false;
  auto CancelledNow = [&]() {
    if (!Cancel || !Cancel->checkpoint())
      return false;
    if (!Cancelled && Diags)
      Diags->note("phase-manager", F.getName(),
                  std::string("compilation cancelled (") +
                      cancelReasonName(Cancel->reason()) +
                      "); stopping pipeline");
    Cancelled = true;
    return true;
  };

  for (unsigned Round = 0; Round != MaxRounds; ++Round) {
    if (CancelledNow())
      break;
    ++rounds_run;
    // Budget gate: the first round always runs (every function gets at
    // least the single-round baseline pipeline), further fixpoint rounds
    // are shed when the wall-clock allowance is gone.
    if (Round != 0 && Budget && Budget->expired()) {
      Budget->degradeTo(DegradationLevel::NoFixpoint);
      if (Diags)
        Diags->note("phase-manager", F.getName(),
                    "compile budget exhausted; dropping fixpoint iteration "
                    "after round " +
                        std::to_string(Round));
      break;
    }

    bool RoundChanged = false;
    for (unsigned Idx = 0; Idx != Phases.size(); ++Idx) {
      const auto &P = Phases[Idx];
      if (CancelledNow())
        break;
      if (DisabledPhases && DisabledPhases->count(P->name())) {
        ++phases_breaker_skipped;
        continue;
      }
      if (isQuarantined(F.getName(), Idx)) {
        ++phases_quarantined_skipped;
        continue;
      }
      ++phases_run;

      // One span per phase per function (per fixpoint round).
      TraceSpan PhaseSpan(TS, P->name(), "phase",
                          TS ? "\"function\":" + jsonString(F.getName()) +
                                   ",\"round\":" + jsonNumber(Round)
                             : std::string());

      // Per-phase latency histogram ("phase.<name>"), keyed by the phase's
      // static name so all rounds and functions aggregate into one
      // distribution. Detached cost is the enabled() relaxed load.
      const bool Metered = MetricsRegistry::enabled();
      uint64_t PhaseT0 = Metered ? Timer::nowNs() : 0;

      std::unique_ptr<Function> Snapshot;
      if (Transactional)
        Snapshot = F.clone();

      // Audit mode attaches the phase's own counter activity to any
      // quarantine diagnostic: snapshot before the phase so the delta
      // isolates what this phase did. Under the parallel compile service a
      // CounterShard is installed, and the snapshot MUST come from it —
      // the global registry would fold in every concurrent worker's
      // increments and misattribute them to this phase.
      CounterShard *Shard = CounterShard::active();
      std::vector<CounterSample> PreCounters;
      if (Auditing)
        PreCounters =
            Shard ? Shard->snapshot() : CounterRegistry::instance().snapshot();

      // Audit baseline: the pre-phase lint findings. New findings after
      // the phase are the phase's effect; pre-existing ones are not.
      std::unordered_set<std::string> PreKeys;
      if (Auditing)
        for (const LintFinding &Finding : Audit->lint(F).Findings)
          PreKeys.insert(Finding.key());

      bool PhaseChanged = P->run(F);

      if (Metered)
        MetricsRegistry::instance()
            .getOrCreate("phase", P->name(), MetricUnit::Nanoseconds,
                         MetricClass::Timing)
            .record(Timer::nowNs() - PhaseT0);

      // Fault injection (only meaningful when the verifier would catch the
      // damage; silent corruption in unverified mode would be a miscompile
      // generator, not a robustness test).
      bool ForcedFailure = false;
      if (Checking && Injector) {
        switch (Injector->at(P->name())) {
        case FaultKind::None:
          break;
        case FaultKind::CorruptIR:
          PhaseChanged |= corruptFunctionIR(F, Injector->entropy());
          break;
        case FaultKind::PhaseFailure:
          ForcedFailure = true;
          break;
        case FaultKind::Hang:
          // Containment probe: spins until the token's deadline breaks it.
          // Without a token (or without a deadline armed) this is a no-op,
          // so an injected hang cannot wedge an unsupervised pipeline.
          hangUntilCancelled(Cancel);
          break;
        case FaultKind::ResourceExhaustion:
          break; // Interpreter-tier fault; no effect at a phase site.
        }
      }

      if (Checking && (PhaseChanged || ForcedFailure)) {
        std::string Error;
        if (ForcedFailure) {
          Error = "injected phase failure";
        } else if (Auditing) {
          // Diff the post-phase lint report against the pre-phase baseline
          // and attribute every new error-severity finding to this phase.
          LintReport Post = Audit->lint(F);
          unsigned NewErrors = 0;
          for (const LintFinding &Finding : Post.Findings) {
            if (Finding.Severity != LintSeverity::Error ||
                PreKeys.count(Finding.key()))
              continue;
            ++NewErrors;
            if (NewErrors > 4)
              continue; // cap the diagnostic; the count stays exact
            if (!Error.empty())
              Error += "; ";
            Error += "[" + Finding.RuleId + "] " + Finding.location() +
                     ": " + Finding.Message;
          }
          if (NewErrors != 0)
            Error = "introduced " + std::to_string(NewErrors) +
                    " new lint violation(s): " + Error +
                    (NewErrors > 4 ? "; ..." : "");
        } else {
          Error = verifyFunction(F);
        }

        // Static checks passed: consult the behavioral oracle, which
        // catches structurally valid but semantically wrong transforms.
        if (Error.empty() && Auditing && Oracle && PhaseChanged &&
            Snapshot) {
          std::string Detail;
          if (!Oracle(*Snapshot, F, Detail))
            Error = "audit oracle detected behavioral divergence: " + Detail;
        }

        if (!Error.empty()) {
          if (!Transactional) {
            fprintf(stderr, "verifier failed after %s on @%s: %s\n",
                    P->name(), F.getName().c_str(), Error.c_str());
            abort();
          }
          // Transaction abort: restore the pre-phase IR, quarantine the
          // phase for this function, and continue the pipeline.
          F.restoreFrom(*Snapshot);
          assert(verifyFunction(F).empty() &&
                 "rollback restored an invalid snapshot");
          Quarantined[F.getName()].insert(Idx);
          QuarantineEvents.push_back(P->name());
          ++Rollbacks;
          ++phase_rollbacks;
          if (Auditing) {
            std::vector<CounterSample> Delta = CounterRegistry::delta(
                PreCounters, Shard ? Shard->snapshot()
                                   : CounterRegistry::instance().snapshot());
            if (!Delta.empty()) {
              Error += " [counters:";
              for (const CounterSample &Sample : Delta)
                Error += " " + Sample.Name + "=" +
                         std::to_string(Sample.Value);
              Error += "]";
            }
          }
          if (TS)
            TS->instant("quarantine", "phase",
                        "\"phase\":" + jsonString(P->name()) +
                            ",\"function\":" + jsonString(F.getName()) +
                            ",\"error\":" + jsonString(Error));
          if (Diags)
            Diags->warning(P->name(), F.getName(),
                           "phase rolled back and quarantined: " + Error);
          continue; // The function is back in its pre-phase state.
        }
      }
      RoundChanged |= PhaseChanged;
    }
    Changed |= RoundChanged;
    if (!RoundChanged)
      break;
  }
  return Changed;
}

PhaseManager PhaseManager::standardPipeline(bool Verify,
                                            const Module *ClassTable) {
  PhaseManager PM(Verify);
  PM.add(std::make_unique<Canonicalizer>());
  PM.add(std::make_unique<ValueNumbering>());
  PM.add(std::make_unique<ConditionalElimination>());
  PM.add(std::make_unique<ReadElimination>(ClassTable));
  PM.add(std::make_unique<PartialEscapePhase>(ClassTable));
  PM.add(std::make_unique<DeadCodeElimination>());
  PM.add(std::make_unique<SimplifyCFG>());
  return PM;
}
