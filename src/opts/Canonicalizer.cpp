//===- opts/Canonicalizer.cpp - Local folding phase ------------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/DominatorTree.h"
#include "opts/Canonicalize.h"
#include "opts/Phase.h"
#include "analysis/StampMap.h"

using namespace dbds;

Phase::~Phase() = default;

bool Canonicalizer::run(Function &F) {
  bool Changed = false;
  bool LocalChange = true;
  StampMap Stamps;
  auto Lookup = [&Stamps](Instruction *I) { return Stamps.get(I); };
  while (LocalChange) {
    LocalChange = false;
    for (Block *B : F.blocks()) {
      // Snapshot: folding edits the list.
      SmallVector<Instruction *, 16> Insts(B->begin(), B->end());
      for (Instruction *I : Insts) {
        if (I->getBlock() != B)
          continue; // already removed by an earlier fold this sweep
        if (I->isTerminator())
          continue;
        FoldOutcome Outcome = tryCanonicalize(I, identityResolver, Lookup, F);
        if (!Outcome)
          continue;
        Instruction *Repl = Outcome.Replacement;
        if (Outcome.IsNew)
          B->insert(B->indexOf(I), Repl);
        I->replaceAllUsesWith(Repl);
        B->remove(I);
        LocalChange = Changed = true;
      }
    }
  }
  return Changed;
}
