//===- opts/Canonicalize.cpp - AC / action-step primitives ----------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "opts/Canonicalize.h"

#include "ir/Semantics.h"

using namespace dbds;

Instruction *dbds::identityResolver(Instruction *I) { return I; }

bool dbds::isPowerOfTwo(int64_t Value) {
  return Value >= 1 && (Value & (Value - 1)) == 0;
}

unsigned dbds::log2OfPowerOfTwo(int64_t Value) {
  assert(isPowerOfTwo(Value) && "not a power of two");
  unsigned Log = 0;
  while (Value > 1) {
    Value >>= 1;
    ++Log;
  }
  return Log;
}

namespace {

std::optional<int64_t> constantOf(Instruction *I) {
  if (auto *C = dyn_cast<ConstantInst>(I))
    if (!C->isNull())
      return C->getValue();
  return std::nullopt;
}

FoldOutcome existing(Instruction *I) { return {I, false}; }
FoldOutcome fresh(Instruction *I) { return {I, true}; }

FoldOutcome foldBinary(BinaryInst *Bin, const Resolver &Resolve,
                       const StampLookup &Stamps, Function &F) {
  Opcode Op = Bin->getOpcode();
  Instruction *LHS = Resolve(Bin->getLHS());
  Instruction *RHS = Resolve(Bin->getRHS());
  auto LC = constantOf(LHS);
  auto RC = constantOf(RHS);

  // Constant folding: both operands known.
  if (LC && RC)
    return existing(F.constant(evalBinary(Op, *LC, *RC)));

  // Normalize constants to the right for commutative operations so the
  // identity checks below see them.
  if (LC && !RC && Bin->isCommutative()) {
    std::swap(LHS, RHS);
    std::swap(LC, RC);
  }

  if (RC) {
    int64_t C = *RC;
    switch (Op) {
    case Opcode::Add:
    case Opcode::Sub:
      if (C == 0)
        return existing(LHS); // x +- 0 == x
      break;
    case Opcode::Mul:
      if (C == 0)
        return existing(F.constant(0));
      if (C == 1)
        return existing(LHS);
      if (isPowerOfTwo(C)) // x * 2^k == x << k (wrapping both ways)
        return fresh(F.create<BinaryInst>(
            Opcode::Shl, LHS, F.constant(log2OfPowerOfTwo(C))));
      break;
    case Opcode::Div:
      if (C == 1)
        return existing(LHS);
      // x / 2^k == x >> k only for non-negative x (signed division
      // truncates toward zero). The §4.1 example: 32 cycles -> 1.
      if (isPowerOfTwo(C) && C != 1 && Stamps(LHS).isInt() &&
          Stamps(LHS).lo() >= 0)
        return fresh(F.create<BinaryInst>(
            Opcode::Shr, LHS, F.constant(log2OfPowerOfTwo(C))));
      break;
    case Opcode::Rem:
      if (C == 1)
        return existing(F.constant(0));
      if (isPowerOfTwo(C) && Stamps(LHS).isInt() && Stamps(LHS).lo() >= 0)
        return fresh(
            F.create<BinaryInst>(Opcode::And, LHS, F.constant(C - 1)));
      break;
    case Opcode::And:
      if (C == 0)
        return existing(F.constant(0));
      if (C == -1)
        return existing(LHS);
      break;
    case Opcode::Or:
      if (C == 0)
        return existing(LHS);
      if (C == -1)
        return existing(F.constant(-1));
      break;
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
      if (C == 0)
        return existing(LHS);
      break;
    default:
      break;
    }
  }

  // Same-operand identities.
  if (LHS == RHS) {
    switch (Op) {
    case Opcode::Sub:
    case Opcode::Xor:
      return existing(F.constant(0));
    case Opcode::And:
    case Opcode::Or:
      return existing(LHS);
    default:
      break;
    }
  }

  // Range-based folding, e.g. (x & 1023) / 16 stays foldable downstream.
  Stamp Result = binaryStamp(Op, Stamps(LHS), Stamps(RHS));
  if (auto Known = Result.asConstant())
    return existing(F.constant(*Known));

  // If resolution changed an operand (phi -> input), materialize the
  // rewritten operation so simulation can cost it and the optimizer can
  // insert it.
  if (LHS != Bin->getLHS() || RHS != Bin->getRHS())
    return fresh(F.create<BinaryInst>(Op, LHS, RHS));
  return {};
}

FoldOutcome foldUnary(UnaryInst *Un, const Resolver &Resolve, Function &F) {
  Instruction *Val = Resolve(Un->getValue());
  if (auto C = constantOf(Val))
    return existing(F.constant(evalUnary(Un->getOpcode(), *C)));
  if (Val != Un->getValue())
    return fresh(F.create<UnaryInst>(Un->getOpcode(), Val));
  return {};
}

FoldOutcome foldCompareInst(CompareInst *Cmp, const Resolver &Resolve,
                            const StampLookup &Stamps, Function &F) {
  Instruction *LHS = Resolve(Cmp->getLHS());
  Instruction *RHS = Resolve(Cmp->getRHS());
  if (LHS == RHS) {
    // x ? x: EQ/LE/GE hold, NE/LT/GT do not.
    Predicate P = Cmp->getPredicate();
    bool Holds =
        P == Predicate::EQ || P == Predicate::LE || P == Predicate::GE;
    return existing(F.constant(Holds ? 1 : 0));
  }
  if (auto Known = foldCompare(Cmp->getPredicate(), Stamps(LHS), Stamps(RHS)))
    return existing(F.constant(*Known ? 1 : 0));
  if (LHS != Cmp->getLHS() || RHS != Cmp->getRHS())
    return fresh(F.create<CompareInst>(Cmp->getPredicate(), LHS, RHS));
  return {};
}

} // namespace

FoldOutcome dbds::tryCanonicalize(Instruction *I, const Resolver &Resolve,
                                  const StampLookup &Stamps, Function &F) {
  switch (I->getOpcode()) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
    return foldBinary(cast<BinaryInst>(I), Resolve, Stamps, F);
  case Opcode::Neg:
  case Opcode::Not:
    return foldUnary(cast<UnaryInst>(I), Resolve, F);
  case Opcode::Cmp:
    return foldCompareInst(cast<CompareInst>(I), Resolve, Stamps, F);
  case Opcode::Phi: {
    // Copy propagation: a phi whose inputs all agree is that value.
    auto *Phi = cast<PhiInst>(I);
    if (Instruction *Unique = Phi->getUniqueInput())
      return existing(Unique);
    return {};
  }
  default:
    return {};
  }
}
