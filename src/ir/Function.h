//===- ir/Function.h - Compilation unit -------------------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Function is one compilation unit: the unit DBDS simulates, budgets,
/// and duplicates within (paper §5.2/§5.4). It owns all blocks and the
/// instruction pool; Blocks hold ordered raw pointers.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_IR_FUNCTION_H
#define DBDS_IR_FUNCTION_H

#include "ir/Block.h"
#include "ir/Instruction.h"

#include <memory>
#include <string>
#include <vector>

namespace dbds {

/// An object class: a name and a field count. Fields are integer-valued.
struct ClassInfo {
  std::string Name;
  unsigned NumFields = 0;
};

/// One compilation unit.
class Function {
public:
  Function(std::string Name, unsigned NumParams,
           SmallVector<Type, 4> ParamTypes = {})
      : Name(std::move(Name)), NumParams(NumParams),
        ParamTypes(std::move(ParamTypes)) {
    while (this->ParamTypes.size() < NumParams)
      this->ParamTypes.push_back(Type::Int);
  }

  Function(const Function &) = delete;
  Function &operator=(const Function &) = delete;

  const std::string &getName() const { return Name; }
  unsigned getNumParams() const { return NumParams; }
  Type getParamType(unsigned Idx) const {
    assert(Idx < NumParams && "parameter index out of range");
    return ParamTypes[Idx];
  }

  // ---- Blocks ----------------------------------------------------------

  /// Creates a new (empty, detached from control flow) block.
  Block *createBlock() {
    Blocks.push_back(std::unique_ptr<Block>(new Block(this, NextBlockId++)));
    return Blocks.back().get();
  }

  Block *getEntry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }

  /// Blocks in creation order (stable; removal preserves order).
  std::vector<Block *> blocks() const {
    std::vector<Block *> Result;
    Result.reserve(Blocks.size());
    for (const auto &B : Blocks)
      Result.push_back(B.get());
    return Result;
  }

  unsigned getNumBlocks() const {
    return static_cast<unsigned>(Blocks.size());
  }

  /// Finds a block by id; returns null if it was removed.
  Block *getBlockById(unsigned Id) const;

  /// Removes \p B from the function (must be unreachable / disconnected;
  /// instructions inside are detached). Storage stays in the pool.
  void eraseBlock(Block *B);

  // ---- Instruction creation -------------------------------------------

  /// Allocates an instruction of type \p InstT in the function pool. The
  /// instruction starts detached; insert it via Block::append and friends.
  template <typename InstT, typename... ArgTypes>
  InstT *create(ArgTypes &&...Args) {
    auto Owned = std::unique_ptr<InstT>(
        new InstT(std::forward<ArgTypes>(Args)...));
    InstT *I = Owned.get();
    I->Id = NextInstId++;
    I->Func = this;
    Pool.push_back(std::move(Owned));
    return I;
  }

  /// Convenience: integer constant (uniqued per value).
  ConstantInst *constant(int64_t Value);

  /// Convenience: the null constant (uniqued).
  ConstantInst *nullConstant();

  /// Upper bound on instruction ids (for dense side tables).
  unsigned getMaxInstId() const { return NextInstId; }

  // ---- Whole-function queries ------------------------------------------

  /// Static code size estimate: sum of per-instruction size estimates over
  /// all inserted instructions (paper §5.2 measures budget in size
  /// estimations, not node count).
  uint64_t estimatedCodeSize() const;

  /// Total number of inserted instructions.
  unsigned instructionCount() const;

  /// Deep copy of this function (used by the backtracking baseline, which
  /// must snapshot the whole IR per candidate — the cost the paper's §3.1
  /// measures at ~10x compile time).
  std::unique_ptr<Function> clone() const;

  /// Transactional rollback: discards this function's entire body and
  /// rebuilds it as a deep copy of \p Snapshot (typically a clone() taken
  /// before a mutating phase ran). The identity of the function object is
  /// preserved, so callers holding a Function& see the restored IR.
  /// \p Snapshot must have the same name and signature.
  void restoreFrom(const Function &Snapshot);

private:
  /// Deep-copies this function's body (blocks, instructions, CFG edges,
  /// phi wiring, constant uniquing state) into the empty function \p Dest.
  void cloneBodyInto(Function &Dest) const;

  std::string Name;
  unsigned NumParams;
  SmallVector<Type, 4> ParamTypes;
  std::vector<std::unique_ptr<Block>> Blocks;
  std::vector<std::unique_ptr<Instruction>> Pool;
  std::vector<std::pair<int64_t, ConstantInst *>> IntConstants;
  ConstantInst *NullConst = nullptr;
  unsigned NextBlockId = 0;
  unsigned NextInstId = 0;

  friend class Instruction;
};

/// A module: a class table plus a set of functions. This is the whole
/// "program" a workload consists of.
class Module {
public:
  /// Registers a class and returns its id.
  unsigned addClass(std::string Name, unsigned NumFields) {
    Classes.push_back({std::move(Name), NumFields});
    return static_cast<unsigned>(Classes.size() - 1);
  }

  const ClassInfo &getClass(unsigned Id) const {
    assert(Id < Classes.size() && "class id out of range");
    return Classes[Id];
  }

  unsigned getNumClasses() const {
    return static_cast<unsigned>(Classes.size());
  }

  Function *addFunction(std::unique_ptr<Function> F) {
    Functions.push_back(std::move(F));
    return Functions.back().get();
  }

  std::vector<Function *> functions() const {
    std::vector<Function *> Result;
    Result.reserve(Functions.size());
    for (const auto &F : Functions)
      Result.push_back(F.get());
    return Result;
  }

  Function *getFunction(const std::string &Name) const;

private:
  std::vector<ClassInfo> Classes;
  std::vector<std::unique_ptr<Function>> Functions;
};

} // namespace dbds

#endif // DBDS_IR_FUNCTION_H
