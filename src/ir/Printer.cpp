//===- ir/Printer.cpp - Textual IR output ---------------------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include "ir/Block.h"
#include "ir/Function.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

using namespace dbds;

namespace {

/// Optional renaming applied when printing whole functions so that two
/// structurally identical functions print identically regardless of the
/// raw ids their instructions and blocks carry (clones and re-parses
/// assign ids in different orders).
struct NameMap {
  std::unordered_map<const Instruction *, unsigned> Values;
  std::unordered_map<const Block *, unsigned> Blocks;
};

thread_local const NameMap *ActiveNames = nullptr;

std::string valueName(const Instruction *I) {
  if (ActiveNames) {
    auto It = ActiveNames->Values.find(I);
    if (It != ActiveNames->Values.end())
      return "%" + std::to_string(It->second);
  }
  return "%" + std::to_string(I->getId());
}

std::string blockName(const Block *B) {
  if (ActiveNames) {
    auto It = ActiveNames->Blocks.find(B);
    if (It != ActiveNames->Blocks.end())
      return "b" + std::to_string(It->second);
  }
  return B->getName();
}

std::string formatProbability(double P) {
  char Buf[32];
  snprintf(Buf, sizeof(Buf), "%.6g", P);
  return Buf;
}

} // namespace

std::string dbds::printInstruction(const Instruction *I) {
  std::string Out;
  if (I->getType() != Type::Void)
    Out += valueName(I) + " = ";
  switch (I->getOpcode()) {
  case Opcode::Constant: {
    const auto *C = cast<ConstantInst>(I);
    Out += "const ";
    Out += C->isNull() ? "null" : std::to_string(C->getValue());
    break;
  }
  case Opcode::Param: {
    const auto *P = cast<ParamInst>(I);
    Out += "param " + std::to_string(P->getIndex());
    break;
  }
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Neg:
  case Opcode::Not: {
    Out += opcodeMnemonic(I->getOpcode());
    for (unsigned Idx = 0, E = I->getNumOperands(); Idx != E; ++Idx) {
      Out += Idx == 0 ? " " : ", ";
      Out += valueName(I->getOperand(Idx));
    }
    break;
  }
  case Opcode::Cmp: {
    const auto *Cmp = cast<CompareInst>(I);
    Out += "cmp ";
    Out += predicateName(Cmp->getPredicate());
    Out += " " + valueName(Cmp->getLHS()) + ", " + valueName(Cmp->getRHS());
    break;
  }
  case Opcode::Phi: {
    Out += "phi ";
    Out += typeName(I->getType());
    const Block *B = I->getBlock();
    const unsigned E = I->getNumOperands();
    // Under the canonical renaming, inputs print sorted by predecessor
    // print index rather than predecessor-list position: the parser
    // rebuilds predecessor lists in CFG-construction order, so only a
    // text-derivable pair order makes print -> parse -> print a fixed
    // point (which content-addressed caching depends on).
    std::vector<unsigned> Order(E);
    for (unsigned Idx = 0; Idx != E; ++Idx)
      Order[Idx] = Idx;
    if (ActiveNames && B && B->getNumPreds() == E)
      std::stable_sort(Order.begin(), Order.end(),
                       [&](unsigned L, unsigned R) {
                         auto LI = ActiveNames->Blocks.find(B->preds()[L]);
                         auto RI = ActiveNames->Blocks.find(B->preds()[R]);
                         if (LI == ActiveNames->Blocks.end() ||
                             RI == ActiveNames->Blocks.end())
                           return false;
                         return LI->second < RI->second;
                       });
    for (unsigned N = 0; N != E; ++N) {
      const unsigned Idx = Order[N];
      Out += N == 0 ? " " : ", ";
      Out += "[" + valueName(I->getOperand(Idx)) + ", ";
      Out += B && Idx < B->getNumPreds() ? blockName(B->preds()[Idx]) : "b?";
      Out += "]";
    }
    break;
  }
  case Opcode::New:
    Out += "new " + std::to_string(cast<NewInst>(I)->getClassId());
    break;
  case Opcode::LoadField: {
    const auto *Load = cast<LoadFieldInst>(I);
    Out += "load " + valueName(Load->getObject()) + ", " +
           std::to_string(Load->getFieldIndex());
    break;
  }
  case Opcode::StoreField: {
    const auto *Store = cast<StoreFieldInst>(I);
    Out += "store " + valueName(Store->getObject()) + ", " +
           std::to_string(Store->getFieldIndex()) + ", " +
           valueName(Store->getValue());
    break;
  }
  case Opcode::Call: {
    const auto *Call = cast<CallInst>(I);
    Out += "call " + std::to_string(Call->getCalleeId()) + "(";
    for (unsigned Idx = 0, E = I->getNumOperands(); Idx != E; ++Idx) {
      if (Idx != 0)
        Out += ", ";
      Out += valueName(I->getOperand(Idx));
    }
    Out += ")";
    break;
  }
  case Opcode::Invoke: {
    const auto *Invoke = cast<InvokeInst>(I);
    Out += "invoke @" + Invoke->getCalleeName() + "(";
    for (unsigned Idx = 0, E = I->getNumOperands(); Idx != E; ++Idx) {
      if (Idx != 0)
        Out += ", ";
      Out += valueName(I->getOperand(Idx));
    }
    Out += ")";
    break;
  }
  case Opcode::If: {
    const auto *If = cast<IfInst>(I);
    Out += "if " + valueName(If->getCondition()) + ", " +
           blockName(If->getTrueSucc()) + ", " +
           blockName(If->getFalseSucc()) + " !" +
           formatProbability(If->getTrueProbability());
    break;
  }
  case Opcode::Jump:
    Out += "jump " + blockName(cast<JumpInst>(I)->getTarget());
    break;
  case Opcode::Return: {
    const auto *Ret = cast<ReturnInst>(I);
    Out += "ret";
    if (Ret->hasValue())
      Out += " " + valueName(Ret->getValue());
    break;
  }
  }
  return Out;
}

std::string dbds::printBlock(const Block *B) {
  std::string Out = blockName(B) + ":\n";
  for (const Instruction *I : *B)
    Out += "  " + printInstruction(I) + "\n";
  return Out;
}

std::string dbds::printFunction(const Function *F) {
  std::string Out = "func @" + F->getName() + "(";
  for (unsigned Idx = 0, E = F->getNumParams(); Idx != E; ++Idx) {
    if (Idx != 0)
      Out += ", ";
    Out += typeName(F->getParamType(Idx));
  }
  Out += ") {\n";
  // Canonical renaming: sequential ids in print order, so structurally
  // identical functions print identically.
  NameMap Names;
  unsigned NextValue = 0, NextBlock = 0;
  for (const Block *B : F->blocks()) {
    Names.Blocks[B] = NextBlock++;
    for (const Instruction *I : *B)
      if (I->getType() != Type::Void)
        Names.Values[I] = NextValue++;
  }
  const NameMap *Saved = ActiveNames;
  ActiveNames = &Names;
  for (const Block *B : F->blocks())
    Out += printBlock(B);
  ActiveNames = Saved;
  Out += "}\n";
  return Out;
}

std::string dbds::printModule(const Module *M) {
  std::string Out;
  for (unsigned Idx = 0, E = M->getNumClasses(); Idx != E; ++Idx) {
    const ClassInfo &CI = M->getClass(Idx);
    Out += "class " + CI.Name + " " + std::to_string(CI.NumFields) + "\n";
  }
  if (M->getNumClasses() != 0)
    Out += "\n";
  for (const Function *F : M->functions()) {
    Out += printFunction(F);
    Out += "\n";
  }
  return Out;
}
