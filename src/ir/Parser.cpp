//===- ir/Parser.cpp - Textual IR input -----------------------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Three-stage parser: (1) split the source into per-line token vectors and
// group them into functions and blocks; (2) build the CFG skeleton
// (blocks, terminators' successor labels, predecessor lists) and create
// empty phi shells; (3) materialize non-phi instructions in reverse post
// order (so every operand is already created — defs dominate uses in valid
// input) and finally wire phi inputs, aligned with predecessor order.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "ir/Block.h"
#include "ir/Function.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>
#include <vector>

using namespace dbds;

namespace {

struct Line {
  unsigned Number = 0;
  std::vector<std::string> Tokens;
};

/// Splits one source line into tokens. Punctuation characters are their own
/// tokens; '%'-values, labels, numbers, and words are single tokens.
std::vector<std::string> tokenize(const std::string &Text) {
  std::vector<std::string> Tokens;
  size_t I = 0, E = Text.size();
  while (I < E) {
    char C = Text[I];
    if (isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (C == '#') // comment to end of line
      break;
    if (C == ',' || C == '(' || C == ')' || C == '{' || C == '}' ||
        C == '[' || C == ']' || C == '=' || C == ':' || C == '@') {
      Tokens.push_back(std::string(1, C));
      ++I;
      continue;
    }
    size_t Start = I;
    if (C == '%' || C == '!' || C == '-')
      ++I;
    while (I < E && (isalnum(static_cast<unsigned char>(Text[I])) ||
                     Text[I] == '_' || Text[I] == '.' || Text[I] == '-'))
      ++I;
    Tokens.push_back(Text.substr(Start, I - Start));
  }
  return Tokens;
}

struct ParsedBlock {
  std::string Label;
  std::vector<Line> Insts;
  Block *B = nullptr;
};

struct ParsedFunction {
  std::string Name;
  SmallVector<Type, 4> ParamTypes;
  std::vector<ParsedBlock> Blocks;
  unsigned HeaderLine = 0;
};

class Parser {
public:
  explicit Parser(const std::string &Source) : Source(Source) {}

  ParseResult run();

private:
  bool fail(unsigned LineNo, const std::string &Message) {
    if (Error.empty())
      Error = "line " + std::to_string(LineNo) + ": " + Message;
    return false;
  }

  bool splitIntoFunctions(std::vector<ParsedFunction> &Funcs, Module &M);
  bool buildFunction(ParsedFunction &PF, Function &F);
  Instruction *createInstruction(const Line &L, Function &F, Block *B);
  Instruction *resolveValue(const std::string &Token, unsigned LineNo);
  Block *resolveLabel(const std::string &Token, unsigned LineNo);

  const std::string &Source;
  std::string Error;
  std::unordered_map<std::string, Instruction *> ValueMap;
  std::unordered_map<std::string, Block *> LabelMap;
};

bool Parser::splitIntoFunctions(std::vector<ParsedFunction> &Funcs,
                                Module &M) {
  std::vector<Line> Lines;
  {
    unsigned No = 0;
    size_t Pos = 0;
    while (Pos <= Source.size()) {
      size_t NL = Source.find('\n', Pos);
      std::string Text = Source.substr(
          Pos, NL == std::string::npos ? std::string::npos : NL - Pos);
      ++No;
      auto Tokens = tokenize(Text);
      if (!Tokens.empty())
        Lines.push_back({No, std::move(Tokens)});
      if (NL == std::string::npos)
        break;
      Pos = NL + 1;
    }
  }

  ParsedFunction *Current = nullptr;
  ParsedBlock *CurrentBlock = nullptr;
  for (Line &L : Lines) {
    const auto &T = L.Tokens;
    if (T[0] == "class") {
      if (Current)
        return fail(L.Number, "class declaration inside a function");
      if (T.size() != 3)
        return fail(L.Number, "expected 'class <name> <numfields>'");
      M.addClass(T[1], static_cast<unsigned>(atoll(T[2].c_str())));
      continue;
    }
    if (T[0] == "func") {
      if (Current)
        return fail(L.Number, "nested function");
      // func @ name ( type , type ) {
      if (T.size() < 5 || T[1] != "@")
        return fail(L.Number, "expected 'func @<name>(...) {'");
      Funcs.push_back({});
      Current = &Funcs.back();
      Current->Name = T[2];
      Current->HeaderLine = L.Number;
      size_t I = 3;
      if (I >= T.size() || T[I] != "(")
        return fail(L.Number, "expected '(' after function name");
      ++I;
      while (I < T.size() && T[I] != ")") {
        if (T[I] == ",") {
          ++I;
          continue;
        }
        if (T[I] == "int")
          Current->ParamTypes.push_back(Type::Int);
        else if (T[I] == "obj")
          Current->ParamTypes.push_back(Type::Obj);
        else
          return fail(L.Number, "unknown parameter type '" + T[I] + "'");
        ++I;
      }
      if (I + 1 >= T.size() || T[I] != ")" || T[I + 1] != "{")
        return fail(L.Number, "expected ') {' in function header");
      CurrentBlock = nullptr;
      continue;
    }
    if (T[0] == "}") {
      if (!Current)
        return fail(L.Number, "'}' outside a function");
      Current = nullptr;
      CurrentBlock = nullptr;
      continue;
    }
    if (!Current)
      return fail(L.Number, "instruction outside a function");
    if (T.size() >= 2 && T[1] == ":" && T[0][0] == 'b') {
      Current->Blocks.push_back({});
      CurrentBlock = &Current->Blocks.back();
      CurrentBlock->Label = T[0];
      continue;
    }
    if (!CurrentBlock)
      return fail(L.Number, "instruction before the first block label");
    CurrentBlock->Insts.push_back(std::move(L));
  }
  if (Current)
    return fail(Lines.empty() ? 1 : Lines.back().Number,
                "missing '}' at end of function");
  return true;
}

Instruction *Parser::resolveValue(const std::string &Token, unsigned LineNo) {
  if (Token.empty() || Token[0] != '%') {
    fail(LineNo, "expected a value name, got '" + Token + "'");
    return nullptr;
  }
  auto It = ValueMap.find(Token);
  if (It == ValueMap.end()) {
    fail(LineNo, "use of undefined value '" + Token + "'");
    return nullptr;
  }
  return It->second;
}

Block *Parser::resolveLabel(const std::string &Token, unsigned LineNo) {
  auto It = LabelMap.find(Token);
  if (It == LabelMap.end()) {
    fail(LineNo, "reference to unknown block '" + Token + "'");
    return nullptr;
  }
  return It->second;
}

Instruction *Parser::createInstruction(const Line &L, Function &F, Block *B) {
  const auto &T = L.Tokens;
  std::string ResultName;
  size_t I = 0;
  if (T[0][0] == '%') {
    if (T.size() < 3 || T[1] != "=") {
      fail(L.Number, "expected '=' after result name");
      return nullptr;
    }
    ResultName = T[0];
    I = 2;
  }
  if (I >= T.size()) {
    fail(L.Number, "missing opcode");
    return nullptr;
  }
  const std::string &Op = T[I++];

  auto intArg = [&](int64_t &Out) {
    if (I >= T.size()) {
      fail(L.Number, "missing integer argument");
      return false;
    }
    Out = atoll(T[I++].c_str());
    return true;
  };
  auto valueArg = [&](Instruction *&Out) {
    if (I >= T.size()) {
      fail(L.Number, "missing value argument");
      return false;
    }
    Out = resolveValue(T[I++], L.Number);
    return Out != nullptr;
  };
  auto comma = [&]() {
    if (I < T.size() && T[I] == ",")
      ++I;
  };

  Instruction *NI = nullptr;
  if (Op == "const") {
    if (I < T.size() && T[I] == "null") {
      ++I;
      NI = F.nullConstant();
    } else {
      int64_t V;
      if (!intArg(V))
        return nullptr;
      NI = F.constant(V);
    }
    // Constants are uniqued and auto-inserted in the entry block; just
    // record the name.
    if (!ResultName.empty())
      ValueMap[ResultName] = NI;
    return NI;
  }
  if (Op == "param") {
    int64_t Idx;
    if (!intArg(Idx))
      return nullptr;
    if (Idx < 0 || static_cast<unsigned>(Idx) >= F.getNumParams()) {
      fail(L.Number, "parameter index out of range");
      return nullptr;
    }
    NI = F.create<ParamInst>(static_cast<unsigned>(Idx),
                             F.getParamType(static_cast<unsigned>(Idx)));
  } else if (Op == "add" || Op == "sub" || Op == "mul" || Op == "div" ||
             Op == "rem" || Op == "and" || Op == "or" || Op == "xor" ||
             Op == "shl" || Op == "shr") {
    static const std::pair<const char *, Opcode> Map[] = {
        {"add", Opcode::Add}, {"sub", Opcode::Sub}, {"mul", Opcode::Mul},
        {"div", Opcode::Div}, {"rem", Opcode::Rem}, {"and", Opcode::And},
        {"or", Opcode::Or},   {"xor", Opcode::Xor}, {"shl", Opcode::Shl},
        {"shr", Opcode::Shr}};
    Opcode Code = Opcode::Add;
    for (const auto &Entry : Map)
      if (Op == Entry.first)
        Code = Entry.second;
    Instruction *LHS, *RHS;
    if (!valueArg(LHS))
      return nullptr;
    comma();
    if (!valueArg(RHS))
      return nullptr;
    NI = F.create<BinaryInst>(Code, LHS, RHS);
  } else if (Op == "neg" || Op == "not") {
    Instruction *Val;
    if (!valueArg(Val))
      return nullptr;
    NI = F.create<UnaryInst>(Op == "neg" ? Opcode::Neg : Opcode::Not, Val);
  } else if (Op == "cmp") {
    if (I >= T.size()) {
      fail(L.Number, "missing comparison predicate");
      return nullptr;
    }
    const std::string &PredName = T[I++];
    Predicate Pred;
    if (PredName == "eq")
      Pred = Predicate::EQ;
    else if (PredName == "ne")
      Pred = Predicate::NE;
    else if (PredName == "lt")
      Pred = Predicate::LT;
    else if (PredName == "le")
      Pred = Predicate::LE;
    else if (PredName == "gt")
      Pred = Predicate::GT;
    else if (PredName == "ge")
      Pred = Predicate::GE;
    else {
      fail(L.Number, "unknown predicate '" + PredName + "'");
      return nullptr;
    }
    Instruction *LHS, *RHS;
    if (!valueArg(LHS))
      return nullptr;
    comma();
    if (!valueArg(RHS))
      return nullptr;
    NI = F.create<CompareInst>(Pred, LHS, RHS);
  } else if (Op == "new") {
    int64_t ClassId;
    if (!intArg(ClassId))
      return nullptr;
    NI = F.create<NewInst>(static_cast<unsigned>(ClassId));
  } else if (Op == "load") {
    Instruction *Obj;
    if (!valueArg(Obj))
      return nullptr;
    comma();
    int64_t Field;
    if (!intArg(Field))
      return nullptr;
    NI = F.create<LoadFieldInst>(Obj, static_cast<unsigned>(Field));
  } else if (Op == "store") {
    Instruction *Obj;
    if (!valueArg(Obj))
      return nullptr;
    comma();
    int64_t Field;
    if (!intArg(Field))
      return nullptr;
    comma();
    Instruction *Val;
    if (!valueArg(Val))
      return nullptr;
    NI = F.create<StoreFieldInst>(Obj, static_cast<unsigned>(Field), Val);
  } else if (Op == "call") {
    int64_t Callee;
    if (!intArg(Callee))
      return nullptr;
    SmallVector<Instruction *, 4> Args;
    if (I < T.size() && T[I] == "(") {
      ++I;
      while (I < T.size() && T[I] != ")") {
        if (T[I] == ",") {
          ++I;
          continue;
        }
        Instruction *Arg = resolveValue(T[I++], L.Number);
        if (!Arg)
          return nullptr;
        Args.push_back(Arg);
      }
      if (I >= T.size()) {
        fail(L.Number, "unterminated call argument list");
        return nullptr;
      }
      ++I; // ')'
    }
    NI = F.create<CallInst>(static_cast<unsigned>(Callee),
                            ArrayRef<Instruction *>(Args.begin(),
                                                    Args.size()));
  } else if (Op == "invoke") {
    // invoke @ name ( args )
    if (I + 1 >= T.size() || T[I] != "@") {
      fail(L.Number, "expected '@callee' after invoke");
      return nullptr;
    }
    ++I;
    std::string Callee = T[I++];
    SmallVector<Instruction *, 4> Args;
    if (I < T.size() && T[I] == "(") {
      ++I;
      while (I < T.size() && T[I] != ")") {
        if (T[I] == ",") {
          ++I;
          continue;
        }
        Instruction *Arg = resolveValue(T[I++], L.Number);
        if (!Arg)
          return nullptr;
        Args.push_back(Arg);
      }
      if (I >= T.size()) {
        fail(L.Number, "unterminated invoke argument list");
        return nullptr;
      }
      ++I; // ')'
    }
    NI = F.create<InvokeInst>(Callee, ArrayRef<Instruction *>(Args.begin(),
                                                              Args.size()));
  } else if (Op == "if") {
    Instruction *Cond;
    if (!valueArg(Cond))
      return nullptr;
    comma();
    if (I >= T.size()) {
      fail(L.Number, "missing true successor");
      return nullptr;
    }
    Block *TrueSucc = resolveLabel(T[I++], L.Number);
    if (!TrueSucc)
      return nullptr;
    comma();
    if (I >= T.size()) {
      fail(L.Number, "missing false successor");
      return nullptr;
    }
    Block *FalseSucc = resolveLabel(T[I++], L.Number);
    if (!FalseSucc)
      return nullptr;
    auto *If = F.create<IfInst>(Cond, TrueSucc, FalseSucc);
    if (I < T.size() && T[I][0] == '!')
      If->setTrueProbability(atof(T[I++].c_str() + 1));
    NI = If;
  } else if (Op == "jump") {
    if (I >= T.size()) {
      fail(L.Number, "missing jump target");
      return nullptr;
    }
    Block *Target = resolveLabel(T[I++], L.Number);
    if (!Target)
      return nullptr;
    NI = F.create<JumpInst>(Target);
  } else if (Op == "ret") {
    Instruction *Val = nullptr;
    if (I < T.size() && T[I][0] == '%') {
      if (!valueArg(Val))
        return nullptr;
    }
    NI = F.create<ReturnInst>(Val);
  } else {
    fail(L.Number, "unknown opcode '" + Op + "'");
    return nullptr;
  }

  B->append(NI);
  if (!ResultName.empty())
    ValueMap[ResultName] = NI;
  return NI;
}

bool Parser::buildFunction(ParsedFunction &PF, Function &F) {
  ValueMap.clear();
  LabelMap.clear();

  if (PF.Blocks.empty())
    return fail(PF.HeaderLine, "function has no blocks");

  // CFG skeleton.
  for (ParsedBlock &PB : PF.Blocks) {
    if (LabelMap.count(PB.Label))
      return fail(PF.HeaderLine, "duplicate block label '" + PB.Label + "'");
    PB.B = F.createBlock();
    LabelMap[PB.Label] = PB.B;
  }

  // Predecessor lists: scan terminators (the last line of each block) for
  // successor labels, in file order. Successor order within an If is
  // true-then-false.
  for (ParsedBlock &PB : PF.Blocks) {
    if (PB.Insts.empty())
      return fail(PF.HeaderLine, "block '" + PB.Label + "' is empty");
    const auto &T = PB.Insts.back().Tokens;
    auto addEdge = [&](const std::string &Label) -> bool {
      Block *Succ = resolveLabel(Label, PB.Insts.back().Number);
      if (!Succ)
        return false;
      Succ->addPred(PB.B);
      return true;
    };
    size_t OpIdx = 0; // terminators have no result name
    const std::string &Op = T[OpIdx];
    if (Op == "if") {
      // if %c , bT , bF [!p]
      std::vector<std::string> Labels;
      for (const std::string &Tok : T)
        if (Tok.size() > 1 && Tok[0] == 'b' &&
            isdigit(static_cast<unsigned char>(Tok[1])))
          Labels.push_back(Tok);
      if (Labels.size() != 2)
        return fail(PB.Insts.back().Number, "if needs two successor labels");
      if (!addEdge(Labels[0]) || !addEdge(Labels[1]))
        return false;
    } else if (Op == "jump") {
      if (T.size() < 2)
        return fail(PB.Insts.back().Number, "jump needs a target label");
      if (!addEdge(T[1]))
        return false;
    } else if (Op != "ret") {
      return fail(PB.Insts.back().Number,
                  "block '" + PB.Label + "' does not end in a terminator");
    }
  }

  // Phi shells, in line order, with recorded input pairs.
  struct PendingPhi {
    PhiInst *Phi;
    Block *B;
    unsigned LineNo;
    std::vector<std::pair<std::string, std::string>> Inputs; // value, label
  };
  std::vector<PendingPhi> Phis;
  for (ParsedBlock &PB : PF.Blocks) {
    for (const Line &L : PB.Insts) {
      const auto &T = L.Tokens;
      if (T.size() < 3 || T[1] != "=" || T[2] != "phi")
        continue;
      size_t I = 3;
      Type Ty = Type::Int;
      if (I < T.size() && (T[I] == "int" || T[I] == "obj")) {
        Ty = T[I] == "int" ? Type::Int : Type::Obj;
        ++I;
      }
      auto *Phi = F.create<PhiInst>(Ty);
      PB.B->append(Phi); // Phis come first in line order; checked below.
      ValueMap[T[0]] = Phi;
      PendingPhi Pending{Phi, PB.B, L.Number, {}};
      // Parse [%v, bN] pairs.
      while (I < T.size()) {
        if (T[I] == "," || T[I] == "]") {
          ++I;
          continue;
        }
        if (T[I] == "[") {
          if (I + 3 >= T.size())
            return fail(L.Number, "malformed phi input");
          std::string Val = T[I + 1];
          std::string Sep = T[I + 2];
          std::string Label = T[I + 3];
          if (Sep != ",")
            return fail(L.Number, "malformed phi input");
          Pending.Inputs.push_back({Val, Label});
          I += 4;
          continue;
        }
        return fail(L.Number, "unexpected token '" + T[I] + "' in phi");
      }
      Phis.push_back(std::move(Pending));
    }
  }

  // Non-phi instructions, blocks visited in reverse post order so operands
  // exist before their uses.
  {
    std::unordered_map<Block *, ParsedBlock *> ByBlock;
    for (ParsedBlock &PB : PF.Blocks)
      ByBlock[PB.B] = &PB;

    std::vector<Block *> Post;
    std::unordered_map<Block *, unsigned> State;
    std::vector<std::pair<Block *, unsigned>> Stack;
    Block *Entry = PF.Blocks.front().B;
    Stack.push_back({Entry, 0});
    State[Entry] = 1;
    // Successors are known from predecessor construction; recompute from
    // the parsed terminator labels.
    auto succLabels = [&](ParsedBlock *PB) {
      std::vector<Block *> Result;
      const auto &T = PB->Insts.back().Tokens;
      if (T[0] == "jump") {
        Result.push_back(LabelMap[T[1]]);
      } else if (T[0] == "if") {
        for (const std::string &Tok : T)
          if (Tok.size() > 1 && Tok[0] == 'b' &&
              isdigit(static_cast<unsigned char>(Tok[1])))
            Result.push_back(LabelMap[Tok]);
      }
      return Result;
    };
    while (!Stack.empty()) {
      auto [B, NextSucc] = Stack.back();
      auto Succs = succLabels(ByBlock[B]);
      if (NextSucc < Succs.size()) {
        ++Stack.back().second;
        Block *S = Succs[NextSucc];
        if (State[S] == 0) {
          State[S] = 1;
          Stack.push_back({S, 0});
        }
        continue;
      }
      Post.push_back(B);
      Stack.pop_back();
    }

    for (auto It = Post.rbegin(); It != Post.rend(); ++It) {
      ParsedBlock *PB = ByBlock[*It];
      bool SeenNonPhi = false;
      for (const Line &L : PB->Insts) {
        const auto &T = L.Tokens;
        bool IsPhi = T.size() > 2 && T[1] == "=" && T[2] == "phi";
        if (IsPhi) {
          if (SeenNonPhi)
            return fail(L.Number, "phi after non-phi instruction");
          continue;
        }
        SeenNonPhi = true;
        if (!createInstruction(L, F, PB->B))
          return false;
      }
    }

    // Any block not in Post is unreachable from the entry.
    if (Post.size() != PF.Blocks.size())
      return fail(PF.HeaderLine, "function contains unreachable blocks");
  }

  // Phi inputs, aligned to the predecessor order we constructed.
  for (PendingPhi &Pending : Phis) {
    if (Pending.Inputs.size() != Pending.B->getNumPreds())
      return fail(Pending.LineNo, "phi input count does not match "
                                  "predecessor count");
    for (Block *Pred : Pending.B->preds()) {
      const std::string PredLabel = Pred->getName();
      bool Found = false;
      for (auto &[Val, Label] : Pending.Inputs) {
        Block *LabelBlock = resolveLabel(Label, Pending.LineNo);
        if (!LabelBlock)
          return false;
        if (LabelBlock == Pred && !Val.empty()) {
          Instruction *In = resolveValue(Val, Pending.LineNo);
          if (!In)
            return false;
          Pending.Phi->appendInput(In);
          Val.clear(); // consume (a pred may appear twice)
          Found = true;
          break;
        }
      }
      if (!Found)
        return fail(Pending.LineNo,
                    "phi has no input for predecessor " + PredLabel);
    }
  }

  return true;
}

ParseResult Parser::run() {
  ParseResult Result;
  auto M = std::make_unique<Module>();
  std::vector<ParsedFunction> Funcs;
  if (!splitIntoFunctions(Funcs, *M)) {
    Result.Error = Error;
    return Result;
  }
  for (ParsedFunction &PF : Funcs) {
    auto F = std::make_unique<Function>(PF.Name, PF.ParamTypes.size(),
                                        PF.ParamTypes);
    if (!buildFunction(PF, *F)) {
      Result.Error = Error;
      return Result;
    }
    M->addFunction(std::move(F));
  }
  Result.Mod = std::move(M);
  return Result;
}

} // namespace

ParseResult dbds::parseModule(const std::string &Source) {
  return Parser(Source).run();
}
