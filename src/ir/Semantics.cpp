//===- ir/Semantics.cpp - Evaluation semantics of IR operations -----------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Semantics.h"

#include "support/ErrorHandling.h"

using namespace dbds;

namespace {

/// Wrapping arithmetic through unsigned to avoid UB on overflow.
int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}

} // namespace

int64_t dbds::evalBinary(Opcode Op, int64_t LHS, int64_t RHS) {
  switch (Op) {
  case Opcode::Add:
    return wrapAdd(LHS, RHS);
  case Opcode::Sub:
    return wrapSub(LHS, RHS);
  case Opcode::Mul:
    return wrapMul(LHS, RHS);
  case Opcode::Div:
    if (RHS == 0)
      return 0;
    if (LHS == INT64_MIN && RHS == -1)
      return INT64_MIN; // wraps
    return LHS / RHS;
  case Opcode::Rem:
    if (RHS == 0)
      return 0;
    if (LHS == INT64_MIN && RHS == -1)
      return 0;
    return LHS % RHS;
  case Opcode::And:
    return LHS & RHS;
  case Opcode::Or:
    return LHS | RHS;
  case Opcode::Xor:
    return LHS ^ RHS;
  case Opcode::Shl:
    return static_cast<int64_t>(static_cast<uint64_t>(LHS)
                                << (RHS & 63));
  case Opcode::Shr:
    return LHS >> (RHS & 63); // arithmetic shift
  default:
    dbds_unreachable("not a binary opcode");
  }
}

int64_t dbds::evalUnary(Opcode Op, int64_t Value) {
  switch (Op) {
  case Opcode::Neg:
    return wrapSub(0, Value);
  case Opcode::Not:
    return ~Value;
  default:
    dbds_unreachable("not a unary opcode");
  }
}

int64_t dbds::evalCompare(Predicate Pred, int64_t LHS, int64_t RHS) {
  switch (Pred) {
  case Predicate::EQ:
    return LHS == RHS;
  case Predicate::NE:
    return LHS != RHS;
  case Predicate::LT:
    return LHS < RHS;
  case Predicate::LE:
    return LHS <= RHS;
  case Predicate::GT:
    return LHS > RHS;
  case Predicate::GE:
    return LHS >= RHS;
  }
  dbds_unreachable("unknown predicate");
}

int64_t dbds::evalOpaqueCall(unsigned CalleeId, const int64_t *Args,
                             unsigned NumArgs) {
  uint64_t Hash = 0x9e3779b97f4a7c15ULL ^ CalleeId;
  for (unsigned I = 0; I != NumArgs; ++I) {
    Hash ^= static_cast<uint64_t>(Args[I]) + 0x9e3779b97f4a7c15ULL +
            (Hash << 6) + (Hash >> 2);
    Hash *= 0xbf58476d1ce4e5b9ULL;
  }
  return static_cast<int64_t>(Hash >> 8);
}
