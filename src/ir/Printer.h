//===- ir/Printer.h - Textual IR output -------------------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints functions and modules in the textual IR format round-tripped by
/// ir/Parser.h. Used by the examples, golden tests, and debugging.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_IR_PRINTER_H
#define DBDS_IR_PRINTER_H

#include <string>

namespace dbds {

class Block;
class Function;
class Instruction;
class Module;

/// Renders a single instruction (no trailing newline), e.g.
/// "%3 = add %1, %2".
std::string printInstruction(const Instruction *I);

/// Renders one block including its label line.
std::string printBlock(const Block *B);

/// Renders a whole function.
std::string printFunction(const Function *F);

/// Renders a whole module (class table plus functions).
std::string printModule(const Module *M);

} // namespace dbds

#endif // DBDS_IR_PRINTER_H
