//===- ir/Parser.h - Textual IR input ---------------------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual IR format produced by ir/Printer.h back into a
/// Module. Phi inputs are written with explicit predecessor labels, so a
/// parsed function's phi/predecessor alignment is reconstructed exactly.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_IR_PARSER_H
#define DBDS_IR_PARSER_H

#include <memory>
#include <string>

namespace dbds {

class Module;

/// Outcome of a parse: a module, or a diagnostic.
struct ParseResult {
  std::unique_ptr<Module> Mod;
  std::string Error; ///< Empty on success; "line N: message" otherwise.

  explicit operator bool() const { return Mod != nullptr; }
};

/// Parses \p Source into a module. On failure, returns a null module and a
/// diagnostic naming the offending line.
ParseResult parseModule(const std::string &Source);

} // namespace dbds

#endif // DBDS_IR_PARSER_H
