//===- ir/Semantics.h - Evaluation semantics of IR operations --*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single source of truth for arithmetic/comparison semantics. Both the
/// constant folder (dbds::opts) and the interpreter (dbds::vm) evaluate
/// through these functions, so optimization can never change a program's
/// observable result. Integer arithmetic wraps (two's complement); division
/// and remainder by zero are defined as 0 (no trap state exists in this
/// IR, making Div/Rem pure and freely duplicable).
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_IR_SEMANTICS_H
#define DBDS_IR_SEMANTICS_H

#include "ir/Instruction.h"

#include <cstdint>

namespace dbds {

/// Evaluates a binary arithmetic opcode on two integer values.
int64_t evalBinary(Opcode Op, int64_t LHS, int64_t RHS);

/// Evaluates a unary arithmetic opcode.
int64_t evalUnary(Opcode Op, int64_t Value);

/// Evaluates an integer comparison; returns 0 or 1.
int64_t evalCompare(Predicate Pred, int64_t LHS, int64_t RHS);

/// Deterministic stand-in semantics for opaque calls: a hash of the callee
/// id and arguments. Optimizations never reason about this value; it only
/// keeps program results comparable across optimization levels.
int64_t evalOpaqueCall(unsigned CalleeId, const int64_t *Args,
                       unsigned NumArgs);

} // namespace dbds

#endif // DBDS_IR_SEMANTICS_H
