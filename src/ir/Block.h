//===- ir/Block.h - Basic block --------------------------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic blocks: an ordered list of instructions ending in one terminator,
/// plus an explicit predecessor list kept aligned with phi inputs. Merge
/// blocks (>= 2 predecessors) are DBDS's duplication targets.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_IR_BLOCK_H
#define DBDS_IR_BLOCK_H

#include "ir/Instruction.h"
#include "support/SmallVector.h"

#include <string>
#include <vector>

namespace dbds {

class Function;

/// A basic block in the CFG.
class Block {
public:
  Block(const Block &) = delete;
  Block &operator=(const Block &) = delete;

  unsigned getId() const { return Id; }
  Function *getFunction() const { return Func; }

  /// Printable label, "b<Id>".
  std::string getName() const { return "b" + std::to_string(Id); }

  // ---- Instruction list ----------------------------------------------

  using iterator = std::vector<Instruction *>::const_iterator;
  iterator begin() const { return Insts.begin(); }
  iterator end() const { return Insts.end(); }

  bool empty() const { return Insts.empty(); }
  unsigned size() const { return static_cast<unsigned>(Insts.size()); }

  Instruction *front() const {
    assert(!empty() && "front() on empty block");
    return Insts.front();
  }

  /// The block's terminator, or null if the block is still being built.
  Instruction *getTerminator() const {
    if (Insts.empty() || !Insts.back()->isTerminator())
      return nullptr;
    return Insts.back();
  }

  /// Appends \p I to the block (before any existing terminator this is a
  /// builder error; callers append terminators last).
  void append(Instruction *I);

  /// Inserts \p I at position \p Idx.
  void insert(unsigned Idx, Instruction *I);

  /// Inserts a phi at the end of the leading phi group.
  void insertPhi(PhiInst *Phi);

  /// Detaches \p I from the block (does not free it; the Function pool owns
  /// storage). \p I must have no remaining users when it is a value.
  void remove(Instruction *I);

  /// Index of \p I in the instruction list.
  unsigned indexOf(const Instruction *I) const;

  /// Moves every instruction of this block to the end of \p Dest,
  /// preserving order and operand links (used when merging straight-line
  /// blocks). \p Dest must not have a terminator.
  void transferAllTo(Block *Dest);

  /// Moves the instructions from index \p FromIdx onward to the end of
  /// \p Dest (used when splitting a block around a call site).
  void transferTailTo(unsigned FromIdx, Block *Dest);

  /// The leading phi instructions.
  SmallVector<PhiInst *, 4> phis() const;

  /// Instructions after the phi group, including the terminator.
  SmallVector<Instruction *, 8> nonPhis() const;

  // ---- CFG structure ---------------------------------------------------

  ArrayRef<Block *> preds() const {
    return ArrayRef<Block *>(Preds.begin(), Preds.size());
  }

  unsigned getNumPreds() const { return Preds.size(); }

  bool isMerge() const { return Preds.size() >= 2; }

  /// Index of \p P in the predecessor list. \p P must be a predecessor.
  unsigned indexOfPred(const Block *P) const;

  /// True if \p P occurs in the predecessor list.
  bool hasPred(const Block *P) const;

  /// Appends \p P as a predecessor. Callers must extend every phi.
  void addPred(Block *P) { Preds.push_back(P); }

  /// Removes predecessor \p Idx and drops input \p Idx from every phi.
  void removePred(unsigned Idx);

  /// Replaces predecessor \p Idx with \p NewPred (phis untouched: the value
  /// flowing in is unchanged, only the edge source moved).
  void replacePred(unsigned Idx, Block *NewPred) {
    assert(Idx < Preds.size() && "predecessor index out of range");
    Preds[Idx] = NewPred;
  }

  /// Successor blocks, from the terminator.
  SmallVector<Block *, 2> succs() const;

private:
  friend class Function;
  Block(Function *Func, unsigned Id) : Func(Func), Id(Id) {}

  Function *Func;
  unsigned Id;
  std::vector<Instruction *> Insts;
  SmallVector<Block *, 2> Preds;
};

} // namespace dbds

#endif // DBDS_IR_BLOCK_H
