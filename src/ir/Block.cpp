//===- ir/Block.cpp - Basic block -----------------------------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Block.h"

#include "ir/Function.h"

#include "support/ErrorHandling.h"

#include <algorithm>

using namespace dbds;

void Block::append(Instruction *I) {
  assert(I->getBlock() == nullptr && "instruction already inserted");
  assert(getTerminator() == nullptr && "appending past the terminator");
  Insts.push_back(I);
  I->Parent = this;
}

void Block::insert(unsigned Idx, Instruction *I) {
  assert(I->getBlock() == nullptr && "instruction already inserted");
  assert(Idx <= Insts.size() && "insert index out of range");
  Insts.insert(Insts.begin() + Idx, I);
  I->Parent = this;
}

void Block::insertPhi(PhiInst *Phi) {
  unsigned Idx = 0;
  while (Idx < Insts.size() && isa<PhiInst>(Insts[Idx]))
    ++Idx;
  insert(Idx, Phi);
}

void Block::remove(Instruction *I) {
  assert(I->getBlock() == this && "instruction not in this block");
  auto It = std::find(Insts.begin(), Insts.end(), I);
  assert(It != Insts.end() && "instruction missing from list");
  Insts.erase(It);
  I->Parent = nullptr;
  // Detach operands so operand use lists stay exact. Removing from the
  // back keeps indices valid.
  while (I->getNumOperands() != 0)
    I->removeOperand(I->getNumOperands() - 1);
}

void Block::transferAllTo(Block *Dest) {
  assert(Dest != this && "transfer to self");
  assert(Dest->getTerminator() == nullptr && "destination already ends");
  for (Instruction *I : Insts) {
    I->Parent = Dest;
    Dest->Insts.push_back(I);
  }
  Insts.clear();
}

void Block::transferTailTo(unsigned FromIdx, Block *Dest) {
  assert(Dest != this && "transfer to self");
  assert(Dest->getTerminator() == nullptr && "destination already ends");
  assert(FromIdx <= Insts.size() && "split index out of range");
  for (unsigned Idx = FromIdx; Idx != Insts.size(); ++Idx) {
    Insts[Idx]->Parent = Dest;
    Dest->Insts.push_back(Insts[Idx]);
  }
  Insts.resize(FromIdx);
}

unsigned Block::indexOf(const Instruction *I) const {
  for (unsigned Idx = 0, E = size(); Idx != E; ++Idx)
    if (Insts[Idx] == I)
      return Idx;
  dbds_unreachable("instruction not in this block");
}

SmallVector<PhiInst *, 4> Block::phis() const {
  SmallVector<PhiInst *, 4> Result;
  for (Instruction *I : Insts) {
    auto *Phi = dyn_cast<PhiInst>(I);
    if (!Phi)
      break;
    Result.push_back(Phi);
  }
  return Result;
}

SmallVector<Instruction *, 8> Block::nonPhis() const {
  SmallVector<Instruction *, 8> Result;
  for (Instruction *I : Insts)
    if (!isa<PhiInst>(I))
      Result.push_back(I);
  return Result;
}

unsigned Block::indexOfPred(const Block *P) const {
  for (unsigned Idx = 0, E = Preds.size(); Idx != E; ++Idx)
    if (Preds[Idx] == P)
      return Idx;
  dbds_unreachable("block is not a predecessor");
}

bool Block::hasPred(const Block *P) const {
  for (const Block *Pred : Preds)
    if (Pred == P)
      return true;
  return false;
}

void Block::removePred(unsigned Idx) {
  assert(Idx < Preds.size() && "predecessor index out of range");
  Preds.erase(Preds.begin() + Idx);
  for (PhiInst *Phi : phis())
    Phi->removeInput(Idx);
}

SmallVector<Block *, 2> Block::succs() const {
  SmallVector<Block *, 2> Result;
  Instruction *Term = getTerminator();
  if (!Term)
    return Result;
  if (auto *If = dyn_cast<IfInst>(Term)) {
    Result.push_back(If->getTrueSucc());
    Result.push_back(If->getFalseSucc());
  } else if (auto *Jump = dyn_cast<JumpInst>(Term)) {
    Result.push_back(Jump->getTarget());
  }
  return Result;
}
