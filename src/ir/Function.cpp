//===- ir/Function.cpp - Compilation unit ---------------------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

#include <algorithm>
#include <unordered_map>

using namespace dbds;

namespace {

/// Insertion point for a new constant: after the entry block's leading
/// constants, so first-use order is preserved and printing is stable.
unsigned constantInsertionIndex(const Block *Entry) {
  unsigned Idx = 0;
  for (const Instruction *I : *Entry) {
    if (!isa<ConstantInst>(I))
      break;
    ++Idx;
  }
  return Idx;
}

} // namespace

Block *Function::getBlockById(unsigned Id) const {
  for (const auto &B : Blocks)
    if (B->getId() == Id)
      return B.get();
  return nullptr;
}

void Function::eraseBlock(Block *B) {
  auto It = std::find_if(Blocks.begin(), Blocks.end(),
                         [B](const std::unique_ptr<Block> &P) {
                           return P.get() == B;
                         });
  assert(It != Blocks.end() && "block not in this function");
  assert(B != getEntry() && "cannot erase the entry block");
  // Detach all instructions (back to front so value users inside the block
  // disappear before their defs).
  while (!B->empty()) {
    Instruction *I = *(B->end() - 1);
    B->remove(I);
  }
  Blocks.erase(It);
}

ConstantInst *Function::constant(int64_t Value) {
  for (const auto &Entry : IntConstants) {
    if (Entry.first != Value)
      continue;
    // DCE may have detached an unused cached constant; revive it.
    if (Entry.second->getBlock() == nullptr)
      getEntry()->insert(constantInsertionIndex(getEntry()), Entry.second);
    return Entry.second;
  }
  ConstantInst *C = create<ConstantInst>(Value);
  IntConstants.push_back({Value, C});
  // Constants live in the entry block so they dominate every use.
  getEntry()->insert(constantInsertionIndex(getEntry()), C);
  return C;
}

ConstantInst *Function::nullConstant() {
  if (!NullConst) {
    NullConst = create<ConstantInst>(Type::Obj);
    getEntry()->insert(constantInsertionIndex(getEntry()), NullConst);
  }
  if (NullConst->getBlock() == nullptr)
    getEntry()->insert(constantInsertionIndex(getEntry()), NullConst);
  return NullConst;
}

uint64_t Function::estimatedCodeSize() const {
  uint64_t Size = 0;
  for (const auto &B : Blocks)
    for (const Instruction *I : *B)
      Size += I->estimatedSize();
  return Size;
}

unsigned Function::instructionCount() const {
  unsigned Count = 0;
  for (const auto &B : Blocks)
    Count += B->size();
  return Count;
}

namespace {

/// Reverse post-order over the CFG from the entry block. Dominators appear
/// before the blocks they dominate, so cloning in RPO sees every non-phi
/// operand before its uses.
void buildRPO(Block *Entry, std::vector<Block *> &Out) {
  std::unordered_map<Block *, unsigned> State; // 0 = new, 1 = open, 2 = done
  std::vector<std::pair<Block *, unsigned>> Stack;
  Stack.push_back({Entry, 0});
  State[Entry] = 1;
  std::vector<Block *> Post;
  while (!Stack.empty()) {
    auto &[B, NextSucc] = Stack.back();
    auto Succs = B->succs();
    if (NextSucc < Succs.size()) {
      Block *S = Succs[NextSucc++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.push_back({S, 0});
      }
      continue;
    }
    State[B] = 2;
    Post.push_back(B);
    Stack.pop_back();
  }
  Out.assign(Post.rbegin(), Post.rend());
}

} // namespace

std::unique_ptr<Function> Function::clone() const {
  SmallVector<Type, 4> Params;
  for (unsigned I = 0; I != NumParams; ++I)
    Params.push_back(ParamTypes[I]);
  auto NewF = std::make_unique<Function>(Name, NumParams, std::move(Params));
  cloneBodyInto(*NewF);
  return NewF;
}

void Function::restoreFrom(const Function &Snapshot) {
  assert(Name == Snapshot.Name && "restoring from a different function");
  assert(NumParams == Snapshot.NumParams && "signature mismatch in restore");
  // Dismantle the current body. Instruction destructors do not chase their
  // operand/user pointers, so wholesale pool destruction is safe even with
  // arbitrary (possibly corrupted) cross-links.
  Blocks.clear();
  Pool.clear();
  IntConstants.clear();
  NullConst = nullptr;
  NextBlockId = 0;
  NextInstId = 0;
  Snapshot.cloneBodyInto(*this);
}

void Function::cloneBodyInto(Function &Dest) const {
  assert(Dest.Blocks.empty() && Dest.Pool.empty() &&
         "clone destination must be empty");
  Function *NewF = &Dest;

  // Pass 1: mirror the block set (entry first, then the rest in order).
  std::unordered_map<const Block *, Block *> BlockMap;
  for (const auto &B : Blocks)
    BlockMap[B.get()] = NewF->createBlock();

  std::vector<Block *> RPO;
  buildRPO(const_cast<Function *>(this)->getEntry(), RPO);

  // Pass 2: clone instructions in RPO; phis first as empty shells so that
  // back-edge inputs can be filled in pass 3.
  std::unordered_map<const Instruction *, Instruction *> InstMap;
  auto mapped = [&](Instruction *I) -> Instruction * {
    auto It = InstMap.find(I);
    assert(It != InstMap.end() && "operand not cloned yet");
    return It->second;
  };

  for (Block *B : RPO) {
    Block *NB = BlockMap.at(B);
    for (Instruction *I : *B) {
      Instruction *NI = nullptr;
      switch (I->getOpcode()) {
      case Opcode::Constant: {
        auto *C = cast<ConstantInst>(I);
        NI = C->isNull() ? NewF->create<ConstantInst>(Type::Obj)
                         : NewF->create<ConstantInst>(C->getValue());
        break;
      }
      case Opcode::Param:
        NI = NewF->create<ParamInst>(cast<ParamInst>(I)->getIndex(),
                                     I->getType());
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
        NI = NewF->create<BinaryInst>(I->getOpcode(), mapped(I->getOperand(0)),
                                      mapped(I->getOperand(1)));
        break;
      case Opcode::Neg:
      case Opcode::Not:
        NI = NewF->create<UnaryInst>(I->getOpcode(), mapped(I->getOperand(0)));
        break;
      case Opcode::Cmp:
        NI = NewF->create<CompareInst>(cast<CompareInst>(I)->getPredicate(),
                                       mapped(I->getOperand(0)),
                                       mapped(I->getOperand(1)));
        break;
      case Opcode::Phi:
        NI = NewF->create<PhiInst>(I->getType()); // Inputs filled in pass 3.
        break;
      case Opcode::New:
        NI = NewF->create<NewInst>(cast<NewInst>(I)->getClassId());
        break;
      case Opcode::LoadField:
        NI = NewF->create<LoadFieldInst>(
            mapped(I->getOperand(0)), cast<LoadFieldInst>(I)->getFieldIndex());
        break;
      case Opcode::StoreField:
        NI = NewF->create<StoreFieldInst>(
            mapped(I->getOperand(0)), cast<StoreFieldInst>(I)->getFieldIndex(),
            mapped(I->getOperand(1)));
        break;
      case Opcode::Call: {
        SmallVector<Instruction *, 4> Args;
        for (Instruction *Arg : I->operands())
          Args.push_back(mapped(Arg));
        NI = NewF->create<CallInst>(cast<CallInst>(I)->getCalleeId(),
                                    ArrayRef<Instruction *>(Args.begin(),
                                                            Args.size()));
        break;
      }
      case Opcode::Invoke: {
        SmallVector<Instruction *, 4> Args;
        for (Instruction *Arg : I->operands())
          Args.push_back(mapped(Arg));
        NI = NewF->create<InvokeInst>(
            cast<InvokeInst>(I)->getCalleeName(),
            ArrayRef<Instruction *>(Args.begin(), Args.size()));
        break;
      }
      case Opcode::If: {
        auto *If = cast<IfInst>(I);
        auto *NIf = NewF->create<IfInst>(mapped(If->getCondition()),
                                         BlockMap.at(If->getTrueSucc()),
                                         BlockMap.at(If->getFalseSucc()));
        NIf->setTrueProbability(If->getTrueProbability());
        NI = NIf;
        break;
      }
      case Opcode::Jump:
        NI = NewF->create<JumpInst>(
            BlockMap.at(cast<JumpInst>(I)->getTarget()));
        break;
      case Opcode::Return: {
        auto *Ret = cast<ReturnInst>(I);
        NI = NewF->create<ReturnInst>(Ret->hasValue() ? mapped(Ret->getValue())
                                                      : nullptr);
        break;
      }
      }
      assert(NI && "unhandled opcode in clone");
      InstMap[I] = NI;
      NB->append(NI);
      if (auto *C = dyn_cast<ConstantInst>(NI)) {
        // Keep the clone's constant-uniquing map coherent.
        if (C->isNull())
          NewF->NullConst = C;
        else
          NewF->IntConstants.push_back({C->getValue(), C});
      }
    }
  }

  // Pass 3: predecessor lists and phi inputs.
  for (Block *B : RPO) {
    Block *NB = BlockMap.at(B);
    for (Block *P : B->preds())
      NB->addPred(BlockMap.at(P));
    auto OldPhis = B->phis();
    auto NewPhis = NB->phis();
    assert(OldPhis.size() == NewPhis.size() && "phi count mismatch");
    for (unsigned PhiIdx = 0; PhiIdx != OldPhis.size(); ++PhiIdx)
      for (Instruction *In : OldPhis[PhiIdx]->operands())
        NewPhis[PhiIdx]->appendInput(mapped(In));
  }
}

Function *Module::getFunction(const std::string &Name) const {
  for (const auto &F : Functions)
    if (F->getName() == Name)
      return F.get();
  return nullptr;
}
