//===- ir/IRBuilder.h - Convenience IR construction -------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fluent construction of IR: creates instructions in the owning function
/// and appends them to the current insertion block. Keeps predecessor
/// lists in sync when emitting terminators.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_IR_IRBUILDER_H
#define DBDS_IR_IRBUILDER_H

#include "ir/Block.h"
#include "ir/Function.h"

namespace dbds {

/// Builder appending instructions to a current block.
class IRBuilder {
public:
  explicit IRBuilder(Function &F) : F(F) {}

  Function &getFunction() { return F; }

  /// Moves the insertion point to \p B.
  void setBlock(Block *B) { Current = B; }
  Block *getBlock() const { return Current; }

  Block *createBlock() { return F.createBlock(); }

  // ---- Values ----------------------------------------------------------

  ConstantInst *constInt(int64_t Value) { return F.constant(Value); }
  ConstantInst *constNull() { return F.nullConstant(); }

  ParamInst *param(unsigned Index) {
    auto *P = F.create<ParamInst>(Index, F.getParamType(Index));
    append(P);
    return P;
  }

  BinaryInst *binary(Opcode Op, Instruction *LHS, Instruction *RHS) {
    auto *I = F.create<BinaryInst>(Op, LHS, RHS);
    append(I);
    return I;
  }

  BinaryInst *add(Instruction *L, Instruction *R) {
    return binary(Opcode::Add, L, R);
  }
  BinaryInst *sub(Instruction *L, Instruction *R) {
    return binary(Opcode::Sub, L, R);
  }
  BinaryInst *mul(Instruction *L, Instruction *R) {
    return binary(Opcode::Mul, L, R);
  }
  BinaryInst *div(Instruction *L, Instruction *R) {
    return binary(Opcode::Div, L, R);
  }
  BinaryInst *rem(Instruction *L, Instruction *R) {
    return binary(Opcode::Rem, L, R);
  }
  BinaryInst *shl(Instruction *L, Instruction *R) {
    return binary(Opcode::Shl, L, R);
  }
  BinaryInst *shr(Instruction *L, Instruction *R) {
    return binary(Opcode::Shr, L, R);
  }

  UnaryInst *neg(Instruction *V) {
    auto *I = F.create<UnaryInst>(Opcode::Neg, V);
    append(I);
    return I;
  }

  CompareInst *cmp(Predicate Pred, Instruction *LHS, Instruction *RHS) {
    auto *I = F.create<CompareInst>(Pred, LHS, RHS);
    append(I);
    return I;
  }

  PhiInst *phi(Type Ty) {
    auto *P = F.create<PhiInst>(Ty);
    Current->insertPhi(P);
    return P;
  }

  NewInst *newObject(unsigned ClassId) {
    auto *I = F.create<NewInst>(ClassId);
    append(I);
    return I;
  }

  LoadFieldInst *load(Instruction *Object, unsigned FieldIndex) {
    auto *I = F.create<LoadFieldInst>(Object, FieldIndex);
    append(I);
    return I;
  }

  StoreFieldInst *store(Instruction *Object, unsigned FieldIndex,
                        Instruction *Value) {
    auto *I = F.create<StoreFieldInst>(Object, FieldIndex, Value);
    append(I);
    return I;
  }

  CallInst *call(unsigned CalleeId, ArrayRef<Instruction *> Args) {
    auto *I = F.create<CallInst>(CalleeId, Args);
    append(I);
    return I;
  }

  // ---- Terminators (keep predecessor lists in sync) --------------------

  IfInst *branch(Instruction *Cond, Block *TrueSucc, Block *FalseSucc,
                 double TrueProbability = 0.5) {
    auto *I = F.create<IfInst>(Cond, TrueSucc, FalseSucc);
    I->setTrueProbability(TrueProbability);
    append(I);
    TrueSucc->addPred(Current);
    FalseSucc->addPred(Current);
    return I;
  }

  JumpInst *jump(Block *Target) {
    auto *I = F.create<JumpInst>(Target);
    append(I);
    Target->addPred(Current);
    return I;
  }

  ReturnInst *ret(Instruction *Value = nullptr) {
    auto *I = F.create<ReturnInst>(Value);
    append(I);
    return I;
  }

private:
  void append(Instruction *I) {
    assert(Current && "no insertion block set");
    Current->append(I);
  }

  Function &F;
  Block *Current = nullptr;
};

} // namespace dbds

#endif // DBDS_IR_IRBUILDER_H
