//===- ir/Instruction.h - SSA instruction hierarchy -------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SSA instruction class hierarchy. This is the reproduction's stand-in
/// for Graal IR (paper §4.1): instead of a sea of floating nodes we keep a
/// block-structured SSA CFG — the DBDS algorithm is formulated over blocks,
/// merges, and the dominator tree, so nothing it needs is lost (DESIGN.md §5).
///
/// Instructions use LLVM-style hand-rolled RTTI (`isa<>/cast<>/dyn_cast<>`),
/// maintain explicit def-use chains, and carry the static cost-model
/// annotations (cycles / code size) from ir/Instructions.def.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_IR_INSTRUCTION_H
#define DBDS_IR_INSTRUCTION_H

#include "support/ArrayRef.h"
#include "support/Casting.h"
#include "support/SmallVector.h"

#include <cstdint>
#include <string>

namespace dbds {

class Block;
class Function;

/// Value types. Everything is either a 64-bit integer or an object
/// reference; comparisons produce integer 0/1.
enum class Type : uint8_t {
  Void, ///< No value (stores, terminators).
  Int,  ///< 64-bit signed integer.
  Obj,  ///< Object reference (possibly null).
};

/// Returns a human-readable name for \p Ty.
const char *typeName(Type Ty);

/// Instruction opcodes, generated from ir/Instructions.def.
enum class Opcode : uint8_t {
#define HANDLE_INST(Op, Class, Mnemonic, Cycles, Size) Op,
#include "ir/Instructions.def"
};

/// Number of opcodes (for table sizing).
constexpr unsigned NumOpcodes = 0
#define HANDLE_INST(Op, Class, Mnemonic, Cycles, Size) +1
#include "ir/Instructions.def"
    ;

/// Mnemonic for \p Op as printed/parsed in the textual IR format.
const char *opcodeMnemonic(Opcode Op);

/// Static cost model (paper §5.3): abstract cycle estimate per opcode.
uint32_t opcodeCycles(Opcode Op);

/// Static cost model (paper §5.3): abstract code size estimate per opcode.
uint32_t opcodeSize(Opcode Op);

/// Comparison predicates for CompareInst.
enum class Predicate : uint8_t { EQ, NE, LT, LE, GT, GE };

/// Mnemonic suffix for \p Pred ("eq", "ne", ...).
const char *predicateName(Predicate Pred);

/// The predicate with swapped operands (LT -> GT, ...).
Predicate swapPredicate(Predicate Pred);

/// The logically negated predicate (LT -> GE, ...).
Predicate negatePredicate(Predicate Pred);

/// Base class of all IR instructions.
///
/// Owns its operand list and maintains a user list so that
/// replaceAllUsesWith and dead-code detection are O(uses). Instructions are
/// allocated from and owned by their Function; Blocks only hold ordered
/// pointers.
class Instruction {
public:
  Instruction(const Instruction &) = delete;
  Instruction &operator=(const Instruction &) = delete;

  Opcode getOpcode() const { return Op; }
  Type getType() const { return Ty; }
  unsigned getId() const { return Id; }

  /// The block this instruction is currently inserted into, or null while
  /// detached (e.g. scratch nodes produced by simulation action steps).
  Block *getBlock() const { return Parent; }

  Function *getFunction() const { return Func; }

  unsigned getNumOperands() const { return Operands.size(); }

  Instruction *getOperand(unsigned Idx) const {
    assert(Idx < Operands.size() && "operand index out of range");
    return Operands[Idx];
  }

  ArrayRef<Instruction *> operands() const {
    return ArrayRef<Instruction *>(Operands.begin(), Operands.size());
  }

  /// Rewrites operand \p Idx to \p V, maintaining both use lists.
  void setOperand(unsigned Idx, Instruction *V);

  /// All instructions currently using this value (with multiplicity).
  ArrayRef<Instruction *> users() const {
    return ArrayRef<Instruction *>(Users.begin(), Users.size());
  }

  bool hasUsers() const { return !Users.empty(); }

  /// Rewrites every use of this value to \p New.
  void replaceAllUsesWith(Instruction *New);

  /// Removes every operand link (keeps operand use lists exact when a
  /// detached or scratch instruction is discarded).
  void dropAllOperands() {
    while (getNumOperands() != 0)
      removeOperand(getNumOperands() - 1);
  }

  /// True for If/Jump/Return.
  bool isTerminator() const {
    return Op >= Opcode::If && Op <= Opcode::Return;
  }

  /// True if this instruction has no observable side effect and can be
  /// removed when unused. Division is pure here: the interpreter defines
  /// x/0 == 0 (DESIGN.md), so no trap state exists.
  bool isPure() const {
    switch (Op) {
    case Opcode::StoreField:
    case Opcode::Call:
    case Opcode::Invoke:
    case Opcode::If:
    case Opcode::Jump:
    case Opcode::Return:
      return false;
    case Opcode::New:
      // Allocation is removable when unused (no finalizers), but must not
      // be reordered freely; we treat it as pure for DCE purposes only.
      return true;
    default:
      return true;
    }
  }

  /// True if the instruction reads or writes memory or has unknown effects
  /// (ordering-relevant for read elimination).
  bool touchesMemory() const {
    return Op == Opcode::LoadField || Op == Opcode::StoreField ||
           Op == Opcode::Call || Op == Opcode::Invoke || Op == Opcode::New;
  }

  /// Static cost model accessors (paper §5.3).
  uint32_t estimatedCycles() const { return opcodeCycles(Op); }
  uint32_t estimatedSize() const { return opcodeSize(Op); }

  static bool classof(const Instruction *) { return true; }

  /// Virtual anchor; instructions are owned and destroyed through the
  /// Function pool.
  virtual ~Instruction();

protected:
  Instruction(Opcode Op, Type Ty) : Op(Op), Ty(Ty) {}

  /// Appends an operand, maintaining use lists.
  void addOperand(Instruction *V);

  /// Removes operand \p Idx, maintaining use lists (shifts the tail).
  void removeOperand(unsigned Idx);

private:
  friend class Block;
  friend class Function;

  void addUser(Instruction *User) { Users.push_back(User); }
  void removeUser(Instruction *User);

  Opcode Op;
  Type Ty;
  unsigned Id = 0;
  Block *Parent = nullptr;
  Function *Func = nullptr;
  SmallVector<Instruction *, 2> Operands;
  SmallVector<Instruction *, 2> Users;
};

/// Integer or null-object constant.
class ConstantInst : public Instruction {
public:
  /// Integer constant.
  explicit ConstantInst(int64_t Value)
      : Instruction(Opcode::Constant, Type::Int), Value(Value) {}

  /// The null object constant.
  static ConstantInst makeNull() { return ConstantInst(Type::Obj); }

  int64_t getValue() const {
    assert(getType() == Type::Int && "value of non-integer constant");
    return Value;
  }

  bool isNull() const { return getType() == Type::Obj; }

  static bool classof(const Instruction *I) {
    return I->getOpcode() == Opcode::Constant;
  }

private:
  friend class Function;
  explicit ConstantInst(Type Ty) : Instruction(Opcode::Constant, Ty) {}

  int64_t Value = 0;
};

/// Function parameter reference.
class ParamInst : public Instruction {
public:
  ParamInst(unsigned Index, Type Ty)
      : Instruction(Opcode::Param, Ty), Index(Index) {}

  unsigned getIndex() const { return Index; }

  static bool classof(const Instruction *I) {
    return I->getOpcode() == Opcode::Param;
  }

private:
  unsigned Index;
};

/// Two-operand integer arithmetic.
class BinaryInst : public Instruction {
public:
  BinaryInst(Opcode Op, Instruction *LHS, Instruction *RHS)
      : Instruction(Op, Type::Int) {
    assert(classofOpcode(Op) && "not a binary opcode");
    addOperand(LHS);
    addOperand(RHS);
  }

  Instruction *getLHS() const { return getOperand(0); }
  Instruction *getRHS() const { return getOperand(1); }

  /// True for Add/Mul/And/Or/Xor.
  bool isCommutative() const {
    Opcode Op = getOpcode();
    return Op == Opcode::Add || Op == Opcode::Mul || Op == Opcode::And ||
           Op == Opcode::Or || Op == Opcode::Xor;
  }

  static bool classofOpcode(Opcode Op) {
    return Op >= Opcode::Add && Op <= Opcode::Shr;
  }

  static bool classof(const Instruction *I) {
    return classofOpcode(I->getOpcode());
  }
};

/// One-operand integer arithmetic (neg, not).
class UnaryInst : public Instruction {
public:
  UnaryInst(Opcode Op, Instruction *Val) : Instruction(Op, Type::Int) {
    assert(classofOpcode(Op) && "not a unary opcode");
    addOperand(Val);
  }

  Instruction *getValue() const { return getOperand(0); }

  static bool classofOpcode(Opcode Op) {
    return Op == Opcode::Neg || Op == Opcode::Not;
  }

  static bool classof(const Instruction *I) {
    return classofOpcode(I->getOpcode());
  }
};

/// Comparison producing integer 0/1. Object operands support EQ/NE only.
class CompareInst : public Instruction {
public:
  CompareInst(Predicate Pred, Instruction *LHS, Instruction *RHS)
      : Instruction(Opcode::Cmp, Type::Int), Pred(Pred) {
    addOperand(LHS);
    addOperand(RHS);
  }

  Predicate getPredicate() const { return Pred; }
  Instruction *getLHS() const { return getOperand(0); }
  Instruction *getRHS() const { return getOperand(1); }

  static bool classof(const Instruction *I) {
    return I->getOpcode() == Opcode::Cmp;
  }

private:
  Predicate Pred;
};

/// SSA phi: one input per predecessor of the parent block, in predecessor
/// order. The input/predecessor alignment is a verifier-checked invariant.
class PhiInst : public Instruction {
public:
  explicit PhiInst(Type Ty) : Instruction(Opcode::Phi, Ty) {}

  unsigned getNumInputs() const { return getNumOperands(); }
  Instruction *getInput(unsigned Idx) const { return getOperand(Idx); }
  void setInput(unsigned Idx, Instruction *V) { setOperand(Idx, V); }
  void appendInput(Instruction *V) { addOperand(V); }
  void removeInput(unsigned Idx) { removeOperand(Idx); }

  /// Returns the sole distinct input if all inputs agree (ignoring
  /// self-references), otherwise null.
  Instruction *getUniqueInput() const;

  static bool classof(const Instruction *I) {
    return I->getOpcode() == Opcode::Phi;
  }
};

/// Object allocation of class \p ClassId; fields start zero-initialized.
/// Cost CYCLES_8/SIZE_8 mirrors Graal's AbstractNewObjectNode (Listing 7).
class NewInst : public Instruction {
public:
  explicit NewInst(unsigned ClassId)
      : Instruction(Opcode::New, Type::Obj), ClassId(ClassId) {}

  unsigned getClassId() const { return ClassId; }

  static bool classof(const Instruction *I) {
    return I->getOpcode() == Opcode::New;
  }

private:
  unsigned ClassId;
};

/// Field read: load (object).field[FieldIndex].
class LoadFieldInst : public Instruction {
public:
  LoadFieldInst(Instruction *Object, unsigned FieldIndex)
      : Instruction(Opcode::LoadField, Type::Int), FieldIndex(FieldIndex) {
    addOperand(Object);
  }

  Instruction *getObject() const { return getOperand(0); }
  unsigned getFieldIndex() const { return FieldIndex; }

  static bool classof(const Instruction *I) {
    return I->getOpcode() == Opcode::LoadField;
  }

private:
  unsigned FieldIndex;
};

/// Field write: (object).field[FieldIndex] = value.
class StoreFieldInst : public Instruction {
public:
  StoreFieldInst(Instruction *Object, unsigned FieldIndex, Instruction *Value)
      : Instruction(Opcode::StoreField, Type::Void), FieldIndex(FieldIndex) {
    addOperand(Object);
    addOperand(Value);
  }

  Instruction *getObject() const { return getOperand(0); }
  Instruction *getValue() const { return getOperand(1); }
  unsigned getFieldIndex() const { return FieldIndex; }

  static bool classof(const Instruction *I) {
    return I->getOpcode() == Opcode::StoreField;
  }

private:
  unsigned FieldIndex;
};

/// Opaque call with unknown side effects (kills all memory knowledge).
/// The interpreter gives it a deterministic pure-function semantics so that
/// program results stay comparable across optimization levels.
class CallInst : public Instruction {
public:
  CallInst(unsigned CalleeId, ArrayRef<Instruction *> Args)
      : Instruction(Opcode::Call, Type::Int), CalleeId(CalleeId) {
    for (Instruction *Arg : Args)
      addOperand(Arg);
  }

  unsigned getCalleeId() const { return CalleeId; }

  static bool classof(const Instruction *I) {
    return I->getOpcode() == Opcode::Call;
  }

private:
  unsigned CalleeId;
};

/// Direct call of another function in the same module, referenced by
/// name (stable across cloning). Returns an integer; unknown side effects
/// on escaped memory until inlined (opts/Inliner.h), after which its body
/// is optimized in place — the §5.1 front-end inlining step.
class InvokeInst : public Instruction {
public:
  InvokeInst(std::string CalleeName, ArrayRef<Instruction *> Args)
      : Instruction(Opcode::Invoke, Type::Int),
        CalleeName(std::move(CalleeName)) {
    for (Instruction *Arg : Args)
      addOperand(Arg);
  }

  const std::string &getCalleeName() const { return CalleeName; }

  static bool classof(const Instruction *I) {
    return I->getOpcode() == Opcode::Invoke;
  }

private:
  std::string CalleeName;
};

/// Conditional branch. Carries the profile-derived probability of the true
/// successor (paper §5.3: probabilities come from HotSpot profiling; here
/// from the dbds::vm profiler).
class IfInst : public Instruction {
public:
  IfInst(Instruction *Condition, Block *TrueSucc, Block *FalseSucc)
      : Instruction(Opcode::If, Type::Void), TrueSucc(TrueSucc),
        FalseSucc(FalseSucc) {
    addOperand(Condition);
  }

  Instruction *getCondition() const { return getOperand(0); }
  Block *getTrueSucc() const { return TrueSucc; }
  Block *getFalseSucc() const { return FalseSucc; }
  void setTrueSucc(Block *B) { TrueSucc = B; }
  void setFalseSucc(Block *B) { FalseSucc = B; }

  double getTrueProbability() const { return TrueProbability; }
  void setTrueProbability(double P) {
    assert(P >= 0.0 && P <= 1.0 && "probability out of range");
    TrueProbability = P;
  }

  static bool classof(const Instruction *I) {
    return I->getOpcode() == Opcode::If;
  }

private:
  Block *TrueSucc;
  Block *FalseSucc;
  double TrueProbability = 0.5;
};

/// Unconditional branch.
class JumpInst : public Instruction {
public:
  explicit JumpInst(Block *Target)
      : Instruction(Opcode::Jump, Type::Void), Target(Target) {}

  Block *getTarget() const { return Target; }
  void setTarget(Block *B) { Target = B; }

  static bool classof(const Instruction *I) {
    return I->getOpcode() == Opcode::Jump;
  }

private:
  Block *Target;
};

/// Function return, with an optional value.
class ReturnInst : public Instruction {
public:
  explicit ReturnInst(Instruction *Value)
      : Instruction(Opcode::Return, Type::Void) {
    if (Value)
      addOperand(Value);
  }

  bool hasValue() const { return getNumOperands() == 1; }
  Instruction *getValue() const {
    assert(hasValue() && "void return has no value");
    return getOperand(0);
  }

  static bool classof(const Instruction *I) {
    return I->getOpcode() == Opcode::Return;
  }
};

} // namespace dbds

#endif // DBDS_IR_INSTRUCTION_H
