//===- ir/Instruction.cpp - SSA instruction hierarchy --------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Instruction.h"

#include "ir/Block.h"

#include "support/ErrorHandling.h"

using namespace dbds;

const char *dbds::typeName(Type Ty) {
  switch (Ty) {
  case Type::Void:
    return "void";
  case Type::Int:
    return "int";
  case Type::Obj:
    return "obj";
  }
  dbds_unreachable("unknown type");
}

namespace {

struct OpcodeInfo {
  const char *Mnemonic;
  uint32_t Cycles;
  uint32_t Size;
};

constexpr OpcodeInfo OpcodeTable[NumOpcodes] = {
#define HANDLE_INST(Op, Class, Mnemonic, Cycles, Size) {Mnemonic, Cycles, Size},
#include "ir/Instructions.def"
};

} // namespace

const char *dbds::opcodeMnemonic(Opcode Op) {
  return OpcodeTable[static_cast<unsigned>(Op)].Mnemonic;
}

uint32_t dbds::opcodeCycles(Opcode Op) {
  return OpcodeTable[static_cast<unsigned>(Op)].Cycles;
}

uint32_t dbds::opcodeSize(Opcode Op) {
  return OpcodeTable[static_cast<unsigned>(Op)].Size;
}

const char *dbds::predicateName(Predicate Pred) {
  switch (Pred) {
  case Predicate::EQ:
    return "eq";
  case Predicate::NE:
    return "ne";
  case Predicate::LT:
    return "lt";
  case Predicate::LE:
    return "le";
  case Predicate::GT:
    return "gt";
  case Predicate::GE:
    return "ge";
  }
  dbds_unreachable("unknown predicate");
}

Predicate dbds::swapPredicate(Predicate Pred) {
  switch (Pred) {
  case Predicate::EQ:
    return Predicate::EQ;
  case Predicate::NE:
    return Predicate::NE;
  case Predicate::LT:
    return Predicate::GT;
  case Predicate::LE:
    return Predicate::GE;
  case Predicate::GT:
    return Predicate::LT;
  case Predicate::GE:
    return Predicate::LE;
  }
  dbds_unreachable("unknown predicate");
}

Predicate dbds::negatePredicate(Predicate Pred) {
  switch (Pred) {
  case Predicate::EQ:
    return Predicate::NE;
  case Predicate::NE:
    return Predicate::EQ;
  case Predicate::LT:
    return Predicate::GE;
  case Predicate::LE:
    return Predicate::GT;
  case Predicate::GT:
    return Predicate::LE;
  case Predicate::GE:
    return Predicate::LT;
  }
  dbds_unreachable("unknown predicate");
}

Instruction::~Instruction() = default;

void Instruction::removeUser(Instruction *User) {
  for (unsigned I = 0, E = Users.size(); I != E; ++I) {
    if (Users[I] == User) {
      Users.erase(Users.begin() + I);
      return;
    }
  }
  dbds_unreachable("removing a user that was never registered");
}

void Instruction::addOperand(Instruction *V) {
  assert(V && "null operand");
  Operands.push_back(V);
  V->addUser(this);
}

void Instruction::removeOperand(unsigned Idx) {
  assert(Idx < Operands.size() && "operand index out of range");
  Operands[Idx]->removeUser(this);
  Operands.erase(Operands.begin() + Idx);
}

void Instruction::setOperand(unsigned Idx, Instruction *V) {
  assert(Idx < Operands.size() && "operand index out of range");
  assert(V && "null operand");
  if (Operands[Idx] == V)
    return;
  Operands[Idx]->removeUser(this);
  Operands[Idx] = V;
  V->addUser(this);
}

void Instruction::replaceAllUsesWith(Instruction *New) {
  assert(New != this && "replacing a value with itself");
  // Users is edited as we go; take a snapshot.
  SmallVector<Instruction *, 8> Snapshot(Users.begin(), Users.end());
  for (Instruction *User : Snapshot) {
    for (unsigned I = 0, E = User->getNumOperands(); I != E; ++I) {
      if (User->getOperand(I) == this) {
        User->setOperand(I, New);
        break; // setOperand removed exactly one Users entry for us.
      }
    }
  }
  assert(Users.empty() && "stale users after replaceAllUsesWith");
}

Instruction *PhiInst::getUniqueInput() const {
  Instruction *Unique = nullptr;
  for (Instruction *In : operands()) {
    if (In == this)
      continue;
    if (Unique && Unique != In)
      return nullptr;
    Unique = In;
  }
  return Unique;
}
