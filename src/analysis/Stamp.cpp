//===- analysis/Stamp.cpp - Value range / nullness lattice ---------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Stamp.h"

#include "support/ErrorHandling.h"

#include <algorithm>

using namespace dbds;

Stamp dbds::shallowStamp(Instruction *I) {
  if (auto *C = dyn_cast<ConstantInst>(I)) {
    if (C->isNull())
      return Stamp::definitelyNull();
    return Stamp::exact(C->getValue());
  }
  if (I->getOpcode() == Opcode::New)
    return Stamp::nonNull();
  return Stamp::top(I->getType());
}

std::optional<Stamp> Stamp::meet(const Stamp &Other) const {
  if (isInt() != Other.isInt())
    return std::nullopt;
  if (isInt()) {
    int64_t NewLo = std::max(Lo, Other.Lo);
    int64_t NewHi = std::min(Hi, Other.Hi);
    if (NewLo > NewHi)
      return std::nullopt;
    return Stamp(NewLo, NewHi);
  }
  if (Null == Other.Null)
    return *this;
  if (Null == Nullness::Maybe)
    return Other;
  if (Other.Null == Nullness::Maybe)
    return *this;
  return std::nullopt; // Null meet NonNull
}

Stamp Stamp::join(const Stamp &Other) const {
  assert(isInt() == Other.isInt() && "joining stamps of different kinds");
  if (isInt())
    return Stamp(std::min(Lo, Other.Lo), std::max(Hi, Other.Hi));
  return Null == Other.Null ? *this : Stamp(Nullness::Maybe);
}

bool Stamp::operator==(const Stamp &Other) const {
  if (Kind != Other.Kind)
    return false;
  if (isInt())
    return Lo == Other.Lo && Hi == Other.Hi;
  return Null == Other.Null;
}

namespace {

/// 128-bit helpers: saturate a range computation to [INT64_MIN, INT64_MAX]
/// or return the full range when the bounds cannot be represented.
Stamp fromWide(__int128 Lo, __int128 Hi) {
  constexpr __int128 Min = INT64_MIN, Max = INT64_MAX;
  if (Lo < Min || Hi > Max)
    return Stamp::top(Type::Int);
  return Stamp::range(static_cast<int64_t>(Lo), static_cast<int64_t>(Hi));
}

} // namespace

Stamp dbds::binaryStamp(Opcode Op, const Stamp &LHS, const Stamp &RHS) {
  if (!LHS.isInt() || !RHS.isInt())
    return Stamp::top(Type::Int);
  __int128 LLo = LHS.lo(), LHi = LHS.hi();
  __int128 RLo = RHS.lo(), RHi = RHS.hi();
  switch (Op) {
  case Opcode::Add:
    return fromWide(LLo + RLo, LHi + RHi);
  case Opcode::Sub:
    return fromWide(LLo - RHi, LHi - RLo);
  case Opcode::Mul: {
    __int128 Products[4] = {LLo * RLo, LLo * RHi, LHi * RLo, LHi * RHi};
    __int128 Lo = Products[0], Hi = Products[0];
    for (__int128 P : Products) {
      Lo = P < Lo ? P : Lo;
      Hi = P > Hi ? P : Hi;
    }
    return fromWide(Lo, Hi);
  }
  case Opcode::Div:
    // x/0 == 0 here, so 0 is always a possible result; with a positive
    // divisor the magnitude never grows.
    if (LHS.lo() >= 0 && RHS.lo() >= 0)
      return Stamp::range(0, LHS.hi());
    return Stamp::top(Type::Int);
  case Opcode::Rem:
    if (RHS.lo() >= 1) {
      // |x rem y| < y and the sign follows x; x rem 0 == 0.
      int64_t Bound = RHS.hi() - 1;
      int64_t Lo = LHS.lo() >= 0 ? 0 : -Bound;
      int64_t Hi = LHS.hi() <= 0 ? 0 : Bound;
      return Stamp::range(std::min(Lo, Hi), std::max(Lo, Hi));
    }
    return Stamp::top(Type::Int);
  case Opcode::And:
    // Masking with any non-negative value clears the sign bit and cannot
    // exceed that value, regardless of the other operand.
    if (LHS.lo() >= 0 && RHS.lo() >= 0)
      return Stamp::range(0, std::min(LHS.hi(), RHS.hi()));
    if (RHS.lo() >= 0)
      return Stamp::range(0, RHS.hi());
    if (LHS.lo() >= 0)
      return Stamp::range(0, LHS.hi());
    return Stamp::top(Type::Int);
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
    return Stamp::top(Type::Int);
  case Opcode::Shr:
    if (RHS.lo() >= 0 && RHS.hi() <= 63) {
      // Arithmetic shift of both bounds brackets the result.
      int64_t A = LHS.lo() >> RHS.lo(), B = LHS.lo() >> RHS.hi();
      int64_t C = LHS.hi() >> RHS.lo(), D = LHS.hi() >> RHS.hi();
      return Stamp::range(std::min(std::min(A, B), std::min(C, D)),
                          std::max(std::max(A, B), std::max(C, D)));
    }
    return Stamp::top(Type::Int);
  default:
    dbds_unreachable("not a binary opcode");
  }
}

Stamp dbds::unaryStamp(Opcode Op, const Stamp &Value) {
  if (!Value.isInt())
    return Stamp::top(Type::Int);
  switch (Op) {
  case Opcode::Neg: {
    __int128 Lo = -static_cast<__int128>(Value.hi());
    __int128 Hi = -static_cast<__int128>(Value.lo());
    return fromWide(Lo, Hi);
  }
  case Opcode::Not:
    return Stamp::range(~Value.hi(), ~Value.lo());
  default:
    dbds_unreachable("not a unary opcode");
  }
}

std::optional<bool> dbds::foldCompare(Predicate Pred, const Stamp &LHS,
                                      const Stamp &RHS) {
  if (LHS.isObj() || RHS.isObj()) {
    // Object comparisons: only null-related facts fold.
    if (!LHS.isObj() || !RHS.isObj())
      return std::nullopt;
    bool Decided;
    if (LHS.isNull() && RHS.isNull())
      Decided = true; // equal
    else if ((LHS.isNull() && RHS.isNonNull()) ||
             (LHS.isNonNull() && RHS.isNull()))
      Decided = false; // unequal
    else
      return std::nullopt;
    assert((Pred == Predicate::EQ || Pred == Predicate::NE) &&
           "ordered comparison of objects");
    return Pred == Predicate::EQ ? Decided : !Decided;
  }
  switch (Pred) {
  case Predicate::EQ:
    if (LHS.hi() < RHS.lo() || LHS.lo() > RHS.hi())
      return false;
    if (LHS.asConstant() && RHS.asConstant() &&
        *LHS.asConstant() == *RHS.asConstant())
      return true;
    return std::nullopt;
  case Predicate::NE: {
    auto Inverse = foldCompare(Predicate::EQ, LHS, RHS);
    if (Inverse)
      return !*Inverse;
    return std::nullopt;
  }
  case Predicate::LT:
    if (LHS.hi() < RHS.lo())
      return true;
    if (LHS.lo() >= RHS.hi())
      return false;
    return std::nullopt;
  case Predicate::LE:
    if (LHS.hi() <= RHS.lo())
      return true;
    if (LHS.lo() > RHS.hi())
      return false;
    return std::nullopt;
  case Predicate::GT:
    return foldCompare(Predicate::LT, RHS, LHS);
  case Predicate::GE:
    return foldCompare(Predicate::LE, RHS, LHS);
  }
  dbds_unreachable("unknown predicate");
}

std::optional<Stamp> dbds::refineByCompare(Predicate Pred, const Stamp &Input,
                                           const Stamp &Other, bool Holds) {
  Predicate Effective = Holds ? Pred : negatePredicate(Pred);
  if (Input.isObj()) {
    if (!Other.isObj())
      return Input;
    switch (Effective) {
    case Predicate::EQ:
      if (Other.isNull())
        return Stamp::definitelyNull().meet(Input);
      if (Other.isNonNull())
        return Stamp::nonNull().meet(Input);
      return Input;
    case Predicate::NE:
      if (Other.isNull())
        return Stamp::nonNull().meet(Input);
      return Input;
    default:
      return Input;
    }
  }
  if (!Other.isInt())
    return Input;
  switch (Effective) {
  case Predicate::EQ:
    return Input.meet(Other);
  case Predicate::NE:
    // Only shaves exact endpoint matches.
    if (auto C = Other.asConstant()) {
      if (Input.asConstant() && *Input.asConstant() == *C)
        return std::nullopt;
      if (Input.lo() == *C && Input.lo() < Input.hi())
        return Stamp::range(Input.lo() + 1, Input.hi());
      if (Input.hi() == *C && Input.lo() < Input.hi())
        return Stamp::range(Input.lo(), Input.hi() - 1);
    }
    return Input;
  case Predicate::LT:
    if (Other.hi() == INT64_MIN)
      return std::nullopt;
    return Input.meet(Stamp::range(INT64_MIN, Other.hi() - 1));
  case Predicate::LE:
    return Input.meet(Stamp::range(INT64_MIN, Other.hi()));
  case Predicate::GT:
    if (Other.lo() == INT64_MAX)
      return std::nullopt;
    return Input.meet(Stamp::range(Other.lo() + 1, INT64_MAX));
  case Predicate::GE:
    return Input.meet(Stamp::range(Other.lo(), INT64_MAX));
  }
  dbds_unreachable("unknown predicate");
}
