//===- analysis/Verifier.cpp - IR invariant checking ----------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"

#include "analysis/Lint.h"
#include "support/Diagnostics.h"

#include <cstdio>

using namespace dbds;

std::string dbds::verifyFunction(Function &F) {
  LintReport Report = Linter::standard().lint(F);
  if (const LintFinding *First = Report.firstError())
    return "[" + First->RuleId + "] " + First->location() + ": " +
           First->Message;
  return "";
}

bool dbds::isValid(Function &F, DiagnosticEngine *Diags) {
  LintReport Report = Linter::standard().lint(F);
  if (!Report.hasErrors())
    return true;
  if (Diags)
    reportToDiagnostics(Report, *Diags, "verifier");
  else
    std::fprintf(stderr, "%s", Report.render().c_str());
  return false;
}
