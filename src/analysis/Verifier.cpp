//===- analysis/Verifier.cpp - IR invariant checking ----------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"

#include "analysis/DominatorTree.h"
#include "ir/Printer.h"

#include <unordered_set>

using namespace dbds;

namespace {

std::string describe(const Instruction *I) {
  std::string Where = I->getBlock() ? I->getBlock()->getName() : "<detached>";
  return "[" + Where + "] " + printInstruction(I);
}

} // namespace

std::string dbds::verifyFunction(Function &F) {
  auto Blocks = F.blocks();
  if (Blocks.empty())
    return "function has no blocks";

  std::unordered_set<const Block *> BlockSet(Blocks.begin(), Blocks.end());

  // Structure: one trailing terminator per block, phis leading, entry has
  // no predecessors.
  if (F.getEntry()->getNumPreds() != 0)
    return "entry block has predecessors";
  for (Block *B : Blocks) {
    Instruction *Term = B->getTerminator();
    if (!Term)
      return "block " + B->getName() + " does not end with a terminator";
    bool SeenNonPhi = false;
    for (Instruction *I : *B) {
      if (I->isTerminator() && I != Term)
        return "terminator in the middle of block " + B->getName();
      if (isa<PhiInst>(I)) {
        if (SeenNonPhi)
          return "phi after non-phi: " + describe(I);
      } else {
        SeenNonPhi = true;
      }
      if (I->getBlock() != B)
        return "instruction parent link broken: " + describe(I);
      if (I->getFunction() != &F)
        return "instruction function link broken: " + describe(I);
    }
    // If with identical successors must have been canonicalized to Jump.
    if (auto *If = dyn_cast<IfInst>(Term)) {
      if (If->getTrueSucc() == If->getFalseSucc())
        return "if with identical successors in " + B->getName();
      if (!BlockSet.count(If->getTrueSucc()) ||
          !BlockSet.count(If->getFalseSucc()))
        return "if targets erased block: " + describe(If);
    }
    if (auto *Jump = dyn_cast<JumpInst>(Term))
      if (!BlockSet.count(Jump->getTarget()))
        return "jump targets erased block: " + describe(Jump);
  }

  // Predecessor/successor symmetry (with edge multiplicity).
  for (Block *B : Blocks) {
    for (Block *P : B->preds()) {
      if (!BlockSet.count(P))
        return "predecessor of " + B->getName() + " is an erased block";
      unsigned EdgeCount = 0;
      for (Block *S : P->succs())
        if (S == B)
          ++EdgeCount;
      unsigned PredCount = 0;
      for (Block *Q : B->preds())
        if (Q == P)
          ++PredCount;
      if (EdgeCount != PredCount)
        return "edge mismatch between " + P->getName() + " and " +
               B->getName();
    }
    for (Block *S : B->succs())
      if (!S->hasPred(B))
        return "successor " + S->getName() + " does not list " +
               B->getName() + " as predecessor";
  }

  // Phi/predecessor alignment and typing.
  for (Block *B : Blocks) {
    for (PhiInst *Phi : B->phis()) {
      if (Phi->getNumInputs() != B->getNumPreds())
        return "phi input count != predecessor count: " + describe(Phi);
      for (Instruction *In : Phi->operands())
        if (In->getType() != Phi->getType())
          return "phi input type mismatch: " + describe(Phi);
    }
    for (Instruction *I : *B) {
      if (auto *Bin = dyn_cast<BinaryInst>(I)) {
        if (Bin->getLHS()->getType() != Type::Int ||
            Bin->getRHS()->getType() != Type::Int)
          return "non-integer operand of arithmetic: " + describe(I);
      }
      if (auto *Cmp = dyn_cast<CompareInst>(I)) {
        if (Cmp->getLHS()->getType() != Cmp->getRHS()->getType())
          return "mixed-type comparison: " + describe(I);
        if (Cmp->getLHS()->getType() == Type::Obj &&
            Cmp->getPredicate() != Predicate::EQ &&
            Cmp->getPredicate() != Predicate::NE)
          return "ordered comparison of objects: " + describe(I);
      }
      if (auto *Load = dyn_cast<LoadFieldInst>(I))
        if (Load->getObject()->getType() != Type::Obj)
          return "load from non-object: " + describe(I);
      if (auto *Store = dyn_cast<StoreFieldInst>(I))
        if (Store->getObject()->getType() != Type::Obj)
          return "store to non-object: " + describe(I);
      if (auto *If = dyn_cast<IfInst>(I))
        if (If->getCondition()->getType() != Type::Int)
          return "non-integer branch condition: " + describe(I);
    }
  }

  // Use-list symmetry: every operand lists the user, every user uses the
  // value, with matching multiplicity.
  for (Block *B : Blocks) {
    for (Instruction *I : *B) {
      for (Instruction *Op : I->operands()) {
        unsigned InOperands = 0;
        for (Instruction *Op2 : I->operands())
          if (Op2 == Op)
            ++InOperands;
        unsigned InUsers = 0;
        for (Instruction *U : Op->users())
          if (U == I)
            ++InUsers;
        if (InOperands != InUsers)
          return "use-list mismatch between " + describe(I) + " and " +
                 describe(Op);
        if (Op->getBlock() == nullptr)
          return "operand is detached: " + describe(I) + " uses " +
                 printInstruction(Op);
      }
      for (Instruction *U : I->users())
        if (U->getBlock() == nullptr)
          return "detached user recorded: " + describe(I);
    }
  }

  // SSA dominance. Unreachable blocks are not permitted (phases must prune
  // them), which the dominator tree check enforces implicitly.
  DominatorTree DT(F);
  for (Block *B : Blocks) {
    if (!DT.isReachable(B))
      return "unreachable block " + B->getName();
    for (Instruction *I : *B)
      for (Instruction *Op : I->operands())
        if (!DT.dominatesUse(Op, I))
          return "use not dominated by definition: " + describe(I) +
                 " uses " + describe(Op);
  }

  return "";
}

bool dbds::isValid(Function &F) {
  std::string Error = verifyFunction(F);
  assert((Error.empty() || (printFunction(&F), true)) && "verifier failed");
  return Error.empty();
}
