//===- analysis/Lint.h - Pluggable IR static analysis -----------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRLint: a rule-registry-based static-analysis engine over the IR. It
/// supersedes the stop-at-first-violation verifier with multi-diagnostic
/// reporting: every enabled rule runs over the whole function and records
/// *all* of its findings (rule id, severity, location) into one report.
///
/// Rules run in two stages. Structure-stage rules check the invariants the
/// CFG/SSA analyses themselves rely on (terminators, edge symmetry, phi
/// layout, use lists); semantic-stage rules (dominance, stamp soundness,
/// loop shape, cost-model coverage, ...) run only when the structure stage
/// reported no errors — their analyses would be meaningless or unsafe on a
/// broken CFG, and the structural finding is the root cause anyway.
///
/// The engine backs three consumers: `verifyFunction` (a thin first-error
/// wrapper, analysis/Verifier.h), the `PhaseManager` phase-effect auditor
/// (opts/Phase.h), and the standalone `tools/irlint` CLI.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_ANALYSIS_LINT_H
#define DBDS_ANALYSIS_LINT_H

#include "analysis/DataFlow.h"
#include "analysis/DominatorTree.h"
#include "analysis/Loops.h"
#include "analysis/StampMap.h"
#include "ir/Function.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace dbds {

class DiagnosticEngine;
class LintRule;

/// Finding severity. Errors are invariant violations (the function must
/// not be executed / must be rolled back); warnings are suspicious but
/// executable shapes (dead phis, exit-less loops); notes are informative.
enum class LintSeverity : uint8_t { Note, Warn, Error };

const char *lintSeverityName(LintSeverity S);

/// One finding: which rule, how severe, and where.
struct LintFinding {
  std::string RuleId;
  LintSeverity Severity = LintSeverity::Error;
  std::string FunctionName;
  std::string BlockName; ///< "" for function-level findings.
  std::string InstDesc;  ///< Printed instruction; "" for block-level.
  std::string Message;

  /// "@fn b3: %phi = phi ..." (the non-empty location parts).
  std::string location() const;

  /// One human-readable line: "error[phi-layout] @fn b3: message".
  std::string render() const;

  /// Stable identity for diffing reports across a phase (audit mode).
  std::string key() const;
};

/// All findings of one lint pass (or several, via append).
struct LintReport {
  std::vector<LintFinding> Findings;

  unsigned count(LintSeverity S) const;
  unsigned errorCount() const { return count(LintSeverity::Error); }
  bool hasErrors() const;
  const LintFinding *firstError() const;
  void append(const LintReport &Other);

  /// One line per finding.
  std::string render() const;

  /// Machine-readable report: {"findings": [...], "counts": {...}}.
  std::string renderJSON() const;
};

/// Summary of the values one instruction was observed to produce across
/// interpreter runs (collected by a driver via Interpreter::setObserver;
/// the analysis layer itself never executes code). The stamp-soundness
/// rule checks that static stamps contain every observed value.
struct ObservedValues {
  int64_t Min = INT64_MAX;
  int64_t Max = INT64_MIN;
  uint64_t Samples = 0;
  bool SawNull = false;
  bool SawNonNull = false;

  void noteInt(int64_t V) {
    Min = V < Min ? V : Min;
    Max = V > Max ? V : Max;
    ++Samples;
  }
  void noteObj(bool IsNull) {
    (IsNull ? SawNull : SawNonNull) = true;
    ++Samples;
  }
};

using ObservationMap = std::unordered_map<const Instruction *, ObservedValues>;

/// An external claim about an instruction's stamp. When it yields a value,
/// the stamp-soundness rule validates that claim instead of the default
/// StampMap recomputation — the seam through which tests (and future
/// cached-stamp layers) expose stamps for auditing.
using StampClaim = std::function<std::optional<Stamp>(Instruction *)>;

/// Per-pass state shared by all rules: the function under analysis, lazily
/// built analyses, and the finding sink.
class LintContext {
public:
  LintContext(Function &F, const Module *ClassTable,
              const ObservationMap *Observations, const StampClaim &Claim,
              LintReport &Report);

  Function &function() { return F; }
  const Module *classTable() const { return ClassTable; }
  const ObservationMap *observations() const { return Observations; }
  const StampClaim &stampClaim() const { return Claim; }

  /// The function's live blocks (cached snapshot).
  const std::vector<Block *> &blocks() const { return Blocks; }

  /// True if \p B is a live block of the function (not erased).
  bool isLiveBlock(const Block *B) const { return LiveBlocks.count(B) != 0; }

  /// Lazily built analyses. Only legal from semantic-stage rules (the
  /// structure stage must have passed; the linter enforces this).
  DominatorTree &domTree();
  LoopInfo &loops();
  StampMap &stamps();

  /// Lazily built flow-sensitive analyses (analysis/DataFlow.h), shared by
  /// the dataflow rule pack. Semantic stage only, like the above.
  StampFlow &flow();
  Liveness &liveness();

  /// Records a finding against the currently running rule.
  void report(LintSeverity Severity, const Block *B, const Instruction *I,
              std::string Message);

private:
  friend class Linter;

  Function &F;
  const Module *ClassTable;
  const ObservationMap *Observations;
  const StampClaim &Claim;
  LintReport &Report;
  const LintRule *CurrentRule = nullptr;
  LintSeverity MaxSeverity = LintSeverity::Error;
  bool SawStructureError = false;
  std::vector<Block *> Blocks;
  std::unordered_set<const Block *> LiveBlocks;
  std::unique_ptr<DominatorTree> DT;
  std::unique_ptr<LoopInfo> LI;
  std::unique_ptr<StampMap> SM;
  std::unique_ptr<StampFlow> SF;
  std::unique_ptr<Liveness> LV;
};

/// One named analysis rule.
class LintRule {
public:
  /// Structure-stage rules validate what the CFG/SSA analyses assume;
  /// semantic-stage rules may build those analyses.
  enum class Stage : uint8_t { Structure, Semantic };

  virtual ~LintRule();

  /// Stable, kebab-case identifier (CLI flags, finding attribution).
  virtual const char *id() const = 0;

  /// One-line human description (CLI --list-rules).
  virtual const char *description() const = 0;

  virtual Stage stage() const { return Stage::Semantic; }

  /// Runs the rule, reporting findings through \p Ctx.
  virtual void run(LintContext &Ctx) = 0;
};

/// The lint engine: an ordered registry of rules plus shared options.
class Linter {
public:
  Linter() = default;

  /// Appends \p Rule (enabled). Registration order is execution order
  /// within each stage.
  void add(std::unique_ptr<LintRule> Rule);

  /// Enables/disables the rule named \p Id. Returns false if unknown.
  bool setEnabled(const std::string &Id, bool Enabled);

  /// Demotes every error-severity finding of rule \p Id to a warning
  /// (acknowledged-violation workflows). Returns false if unknown.
  bool setMaxSeverity(const std::string &Id, LintSeverity S);

  /// All registered rules, in execution order (for --list-rules).
  std::vector<const LintRule *> rules() const;

  /// Class table for rules that reason about allocations; may be null.
  void setClassTable(const Module *M) { ClassTable = M; }

  /// Installs a stamp claim (see StampClaim).
  void setStampClaim(StampClaim C) { Claim = std::move(C); }

  /// Lints one function. \p Observations, when non-null, enables the
  /// dynamic cross-checks (stamp containment of observed values).
  LintReport lint(Function &F,
                  const ObservationMap *Observations = nullptr) const;

  /// Lints every function of \p M into one report.
  LintReport lintModule(const Module &M) const;

  /// The standard rule set: the split-out structural/SSA verifier rules
  /// plus the semantic rules (dominance, phi-synonym, unreachable code,
  /// dead phis, loop shape, stamp soundness, cost-model coverage).
  static Linter standard(const Module *ClassTable = nullptr);

private:
  struct Entry {
    std::unique_ptr<LintRule> Rule;
    bool Enabled = true;
    LintSeverity MaxSeverity = LintSeverity::Error;
  };
  std::vector<Entry> Rules;
  const Module *ClassTable = nullptr;
  StampClaim Claim;
};

/// Registers the standard rule set into \p L (implemented in
/// LintRules.cpp; standard() calls this).
void registerStandardLintRules(Linter &L);

/// Registers the flow-sensitive rule pack built on analysis/DataFlow.h
/// (implemented in DataFlowLintRules.cpp). Opt-in — not part of
/// Linter::standard(): these rules prove facts about what *can execute*,
/// which is diagnostic signal on optimized output but noise on IR that has
/// not been through the pipeline.
void registerDataflowLintRules(Linter &L);

/// Linter::standard() plus the dataflow rule pack (`irlint --dataflow`).
Linter dataflowLinter(const Module *ClassTable = nullptr);

/// Forwards a report's findings into a DiagnosticEngine (error -> error,
/// warn -> warning, note -> note), tagged with \p Component.
void reportToDiagnostics(const LintReport &Report, DiagnosticEngine &Diags,
                         const std::string &Component);

} // namespace dbds

#endif // DBDS_ANALYSIS_LINT_H
