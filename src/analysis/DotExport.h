//===- analysis/DotExport.h - GraphViz CFG/dominator-tree export ------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a function's CFG (and optionally its dominator tree) as a
/// GraphViz dot graph — this substrate's stand-in for Graal's IGV when
/// debugging duplication decisions. Blocks are nodes with their
/// instructions as record labels; control-flow edges are annotated with
/// branch probabilities; dominator-tree edges can be overlaid dashed.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_ANALYSIS_DOTEXPORT_H
#define DBDS_ANALYSIS_DOTEXPORT_H

#include <string>

namespace dbds {

class Function;

/// Options for the dot rendering.
struct DotOptions {
  bool ShowInstructions = true;  ///< Full instruction listing per block.
  bool ShowDominatorTree = false; ///< Overlay idom edges (dashed).
  bool HighlightMerges = true;   ///< Fill merge blocks (duplication sites).
};

/// Renders \p F as a `digraph`.
std::string exportDot(Function &F, const DotOptions &Options = {});

} // namespace dbds

#endif // DBDS_ANALYSIS_DOTEXPORT_H
