//===- analysis/BlockFrequency.h - Relative execution frequency -*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Relative basic-block execution frequencies. The paper (§5.3/§5.4) scales
/// each duplication candidate's benefit by the block's execution frequency
/// relative to the compilation unit's maximum frequency; probabilities come
/// from VM profiling. We support both a profile-driven construction (from
/// the dbds::vm profiler's block counts) and a static estimate (branch
/// probabilities plus a loop multiplier) for unprofiled code.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_ANALYSIS_BLOCKFREQUENCY_H
#define DBDS_ANALYSIS_BLOCKFREQUENCY_H

#include "analysis/DominatorTree.h"
#include "analysis/Loops.h"

#include <unordered_map>

namespace dbds {

/// Per-block relative execution frequencies for one function.
class BlockFrequency {
public:
  /// Static estimate from branch probabilities; loop bodies are weighted by
  /// LoopMultiplier per nesting level.
  static BlockFrequency computeStatic(Function &F, const DominatorTree &DT,
                                      const LoopInfo &LI);

  /// Exact relative frequencies from profiled execution counts.
  static BlockFrequency
  fromProfile(const std::unordered_map<Block *, uint64_t> &Counts);

  /// Absolute frequency of \p B (entry-relative for static estimates,
  /// execution count for profiles). Blocks never seen map to 0.
  double frequency(Block *B) const {
    auto It = Freq.find(B);
    return It == Freq.end() ? 0.0 : It->second;
  }

  /// Frequency of \p B relative to the hottest block, in [0, 1]. This is
  /// the probability term of the paper's shouldDuplicate heuristic.
  double relativeFrequency(Block *B) const {
    return MaxFreq > 0.0 ? frequency(B) / MaxFreq : 0.0;
  }

  /// Extra weight per loop nesting level in the static estimate.
  static constexpr double LoopMultiplier = 10.0;

private:
  std::unordered_map<Block *, double> Freq;
  double MaxFreq = 0.0;
};

} // namespace dbds

#endif // DBDS_ANALYSIS_BLOCKFREQUENCY_H
