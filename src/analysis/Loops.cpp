//===- analysis/Loops.cpp - Natural loop detection -------------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Loops.h"

using namespace dbds;

LoopInfo::LoopInfo(Function &F, const DominatorTree &DT) {
  (void)F;
  for (Block *B : DT.rpo()) {
    for (Block *S : B->succs()) {
      if (!isBackEdge(B, S, DT))
        continue;
      Headers.insert(S);
      // Walk the natural loop body: everything reaching the latch B
      // without passing through the header S.
      std::vector<Block *> Worklist;
      std::unordered_set<Block *> Body;
      Body.insert(S);
      if (Body.insert(B).second)
        Worklist.push_back(B);
      while (!Worklist.empty()) {
        Block *W = Worklist.back();
        Worklist.pop_back();
        for (Block *P : W->preds())
          if (DT.isReachable(P) && Body.insert(P).second)
            Worklist.push_back(P);
      }
      for (Block *Member : Body)
        ++Depth[Member];
    }
  }
}
