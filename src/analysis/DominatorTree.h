//===- analysis/DominatorTree.h - Dominance information ---------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree via the Cooper-Harvey-Kennedy iterative algorithm, plus
/// dominance frontiers and iterated dominance frontiers (used by the SSA
/// reconstruction the duplication transformation needs, paper §3.1), and a
/// depth-first dominator-tree traversal order (the backbone of the DBDS
/// simulation tier, paper §4.1).
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_ANALYSIS_DOMINATORTREE_H
#define DBDS_ANALYSIS_DOMINATORTREE_H

#include "ir/Block.h"
#include "ir/Function.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace dbds {

/// Dominance information for one function. Invalidated by any CFG edit;
/// rebuild after mutating control flow.
class DominatorTree {
public:
  explicit DominatorTree(Function &F);

  /// The immediate dominator of \p B, or null for the entry block.
  Block *getIdom(Block *B) const;

  /// True if \p A dominates \p B (reflexive).
  bool dominates(Block *A, Block *B) const;

  /// True if \p A strictly dominates \p B.
  bool strictlyDominates(Block *A, Block *B) const {
    return A != B && dominates(A, B);
  }

  /// True if the definition \p Def is available at \p User (i.e. dominates
  /// every use site; phi uses count at the corresponding predecessor).
  bool dominatesUse(Instruction *Def, Instruction *User) const;

  /// Dominator-tree children of \p B.
  const std::vector<Block *> &children(Block *B) const;

  /// Blocks in reverse post order over the CFG.
  const std::vector<Block *> &rpo() const { return RPO; }

  /// Blocks in a depth-first pre-order of the dominator tree. This is the
  /// traversal order the simulation tier walks (paper Figure 2).
  const std::vector<Block *> &domPreOrder() const { return PreOrder; }

  /// Dominance frontier of \p B.
  const std::vector<Block *> &frontier(Block *B) const;

  /// Iterated dominance frontier of a set of definition blocks: the phi
  /// insertion points for SSA reconstruction.
  std::vector<Block *>
  iteratedFrontier(const std::vector<Block *> &Defs) const;

  /// True if \p B was reachable when the tree was built.
  bool isReachable(Block *B) const { return Info.count(B) != 0; }

private:
  struct NodeInfo {
    Block *Idom = nullptr;
    unsigned RPOIndex = 0;
    unsigned DFSIn = 0, DFSOut = 0;
    std::vector<Block *> Children;
    std::vector<Block *> Frontier;
  };

  const NodeInfo &info(Block *B) const {
    auto It = Info.find(B);
    assert(It != Info.end() && "block unknown to the dominator tree "
                               "(unreachable or CFG changed)");
    return It->second;
  }

  Function &F;
  std::vector<Block *> RPO;
  std::vector<Block *> PreOrder;
  std::unordered_map<Block *, NodeInfo> Info;
};

/// Computes reverse post order from \p F's entry. Unreachable blocks are
/// omitted.
std::vector<Block *> computeRPO(Function &F);

} // namespace dbds

#endif // DBDS_ANALYSIS_DOMINATORTREE_H
