//===- analysis/StampMap.cpp - On-demand forward stamp computation ------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/StampMap.h"

using namespace dbds;

Stamp StampMap::get(Instruction *I) {
  auto Hit = Memo.find(I);
  if (Hit != Memo.end())
    return Hit->second;
  if (Pending.count(I))
    return Stamp::top(I->getType()); // break phi cycles conservatively

  Pending.emplace(I, State::InProgress);
  Stamp Result = Stamp::top(I->getType());
  switch (I->getOpcode()) {
  case Opcode::Constant:
  case Opcode::New:
    Result = shallowStamp(I);
    break;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
    Result = binaryStamp(I->getOpcode(), get(I->getOperand(0)),
                         get(I->getOperand(1)));
    break;
  case Opcode::Neg:
  case Opcode::Not:
    Result = unaryStamp(I->getOpcode(), get(I->getOperand(0)));
    break;
  case Opcode::Cmp:
    Result = Stamp::range(0, 1);
    break;
  case Opcode::Phi: {
    auto *Phi = cast<PhiInst>(I);
    bool First = true;
    Stamp Joined = Result;
    for (Instruction *In : Phi->operands()) {
      if (In == Phi)
        continue;
      Stamp S = get(In);
      Joined = First ? S : Joined.join(S);
      First = false;
    }
    if (!First)
      Result = Joined;
    break;
  }
  default:
    break;
  }
  Pending.erase(I);
  Memo.emplace(I, Result);
  return Result;
}
