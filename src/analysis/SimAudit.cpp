//===- analysis/SimAudit.cpp - Simulation-soundness auditor ---------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/SimAudit.h"

#include "analysis/DataFlow.h"
#include "ir/Function.h"
#include "telemetry/Counters.h"

using namespace dbds;

DBDS_COUNTER(simaudit, functions_audited);
DBDS_COUNTER(simaudit, decisions_confirmed);
DBDS_COUNTER(simaudit, decisions_overclaimed);
DBDS_COUNTER(simaudit, decisions_underclaimed);
DBDS_COUNTER(simaudit, decisions_skipped);

namespace {

/// True when \p I is provably foldable under \p Flow yet still present:
/// a non-constant pure computation with a constant flow stamp, a decided
/// comparison, or a decided branch. Dead instructions don't count — a
/// fold the next DCE sweep would erase anyway is not residue, so only
/// values with remaining users (or terminators) qualify.
bool isFoldableResidue(StampFlow &Flow, Liveness &Live, Instruction *I) {
  Block *B = I->getBlock();
  if (!B || !Flow.blockExecutable(B))
    return false;
  if (auto *If = dyn_cast<IfInst>(I))
    return If->getTrueSucc() != If->getFalseSucc() &&
           Flow.branchDecided(If).has_value();
  if (!I->hasUsers() && !Live.isLiveOut(I, B))
    return false;
  if (auto *C = dyn_cast<CompareInst>(I)) {
    std::optional<Stamp> L = Flow.stampOf(C->getLHS());
    std::optional<Stamp> R = Flow.stampOf(C->getRHS());
    return L && R && foldCompare(C->getPredicate(), *L, *R).has_value();
  }
  if (isa<BinaryInst>(I) || isa<UnaryInst>(I)) {
    std::optional<Stamp> S = Flow.stampOf(I);
    return S && S->asConstant().has_value();
  }
  return false;
}

/// Whether any instruction of \p B is foldable residue.
bool blockHasResidue(StampFlow &Flow, Liveness &Live, Block *B) {
  for (Instruction *I : *B)
    if (isFoldableResidue(Flow, Live, I))
      return true;
  return false;
}

/// The missed-opportunity probe for a rejected candidate: does the merge
/// still contain a comparison or branch that the *joined* phi stamps leave
/// undecided but that every executable incoming edge decides on its own?
/// That is exactly the shape duplication converts into a fold in each
/// predecessor copy — the DBDS premise (paper §2's motivating example).
bool mergeHasPerEdgeProvableFold(StampFlow &Flow, Block *Merge) {
  if (!Flow.blockExecutable(Merge))
    return false;
  ArrayRef<Block *> Preds = Merge->preds();
  for (PhiInst *Phi : Merge->phis()) {
    for (Instruction *User : Phi->users()) {
      if (User->getBlock() != Merge)
        continue;
      auto *C = dyn_cast<CompareInst>(User);
      if (!C)
        continue;
      // Joined stamps must leave the comparison open...
      std::optional<Stamp> JL = Flow.stampOf(C->getLHS());
      std::optional<Stamp> JR = Flow.stampOf(C->getRHS());
      if (!JL || !JR || foldCompare(C->getPredicate(), *JL, *JR))
        continue;
      // ... while every executable edge decides it by substituting the
      // phi's per-edge input stamp.
      bool AllDecide = true, AnyEdge = false;
      for (unsigned Idx = 0;
           Idx < Preds.size() && Idx < Phi->getNumInputs(); ++Idx) {
        if (!Flow.edgeExecutable(Merge, Idx))
          continue;
        AnyEdge = true;
        std::optional<Stamp> EdgeIn =
            Flow.edgeStamp(Merge, Idx, Phi->getInput(Idx));
        if (!EdgeIn) {
          AllDecide = false;
          break;
        }
        Stamp L = C->getLHS() == Phi ? *EdgeIn : *JL;
        Stamp R = C->getRHS() == Phi ? *EdgeIn : *JR;
        if (!foldCompare(C->getPredicate(), L, R)) {
          AllDecide = false;
          break;
        }
      }
      if (AnyEdge && AllDecide)
        return true;
    }
  }
  return false;
}

/// Local escape classification for the audit's independent replay. The
/// auditor re-derives "this use publishes the allocation" instead of
/// calling the optimizer's own predicate (opts/PartialEscape.h): the
/// analysis layer sits below opts, and an auditor should not share the
/// code paths it audits.
bool auditUseEscapes(const NewInst *New, const Instruction *User) {
  if (auto *Load = dyn_cast<LoadFieldInst>(User))
    return Load->getObject() != New;
  if (auto *Store = dyn_cast<StoreFieldInst>(User))
    return Store->getValue() == New || Store->getObject() != New;
  return true; // call/invoke argument, phi, return, comparison, ...
}

/// Scalar-replacement residue for accepted PEA/sink claims: an allocation
/// that escapes nowhere and feeds no surviving load is held alive only by
/// its own initializer stores — the partial-escape phase plus DCE must
/// erase it, so its survival means the claimed un-escape was not
/// delivered. Allocations with surviving loads are excluded: a load past
/// a merge legitimately pins the object.
bool functionHasUnescapedAllocResidue(StampFlow &Flow, Function &F) {
  for (Block *B : F.blocks()) {
    if (!Flow.blockExecutable(B))
      continue;
    for (Instruction *I : *B) {
      auto *New = dyn_cast<NewInst>(I);
      if (!New)
        continue;
      bool Pinned = false;
      for (Instruction *User : New->users())
        if (auditUseEscapes(New, User) || isa<LoadFieldInst>(User)) {
          Pinned = true;
          break;
        }
      if (!Pinned)
        return true;
    }
  }
  return false;
}

/// The §5.2 missed-opportunity probe for one rejected edge: the phi input
/// coming from \p PredIdx is an allocation whose only escape is that phi —
/// duplicating this predecessor would have un-escaped it, so a simulation
/// that priced the pair at zero opportunities underclaimed.
bool phiEdgeCarriesUnescapableAlloc(StampFlow &Flow, Block *Merge,
                                    unsigned PredIdx) {
  if (!Flow.blockExecutable(Merge) || !Flow.edgeExecutable(Merge, PredIdx))
    return false;
  for (PhiInst *Phi : Merge->phis()) {
    if (PredIdx >= Phi->getNumInputs())
      continue;
    auto *New = dyn_cast<NewInst>(Phi->getInput(PredIdx));
    if (!New)
      continue;
    unsigned PhiUses = 0;
    bool OtherEscape = false;
    for (Instruction *User : New->users()) {
      if (!auditUseEscapes(New, User))
        continue;
      if (User == Phi)
        ++PhiUses;
      else {
        OtherEscape = true;
        break;
      }
    }
    if (!OtherEscape && PhiUses == 1)
      return true;
  }
  return false;
}

AuditVerdict classify(StampFlow &Flow, Liveness &Live, Function &F,
                      const DuplicationDecision &D) {
  switch (D.Verdict) {
  case DecisionVerdict::RolledBack:
  case DecisionVerdict::RejectedStale:
    // The IR the prediction was about no longer exists (round rolled back)
    // or the candidate never matched the CFG in the first place.
    return AuditVerdict::Skipped;

  case DecisionVerdict::Accepted: {
    // The duplication happened. Its claim is "the copied code folds in the
    // predecessor context": check the blocks it shaped for residue the
    // optimizer provably could have folded but didn't. Cleanup routinely
    // erases or renumbers both blocks, so fall back from the precise sites
    // to the whole function rather than skipping the record.
    Block *Pred = F.getBlockById(D.PredId);
    Block *Merge = F.getBlockById(D.MergeId);
    bool Residue = false;
    if (Pred || Merge) {
      Residue = (Pred && blockHasResidue(Flow, Live, Pred)) ||
                (Merge && blockHasResidue(Flow, Live, Merge));
    } else {
      for (Block *B : F.blocks()) {
        if (blockHasResidue(Flow, Live, B)) {
          Residue = true;
          break;
        }
      }
    }
    // PEA claims replay against post-DBDS facts: a promised un-escape
    // (scalar replacement or sink) that left a store-only allocation
    // behind anywhere in the function is an overclaim.
    if (!Residue && (D.Opportunities.AllocationSinks != 0 ||
                     D.Opportunities.PartialEscapes != 0))
      Residue = functionHasUnescapedAllocResidue(Flow, F);
    return Residue ? AuditVerdict::Overclaimed : AuditVerdict::Confirmed;
  }

  case DecisionVerdict::RejectedTradeoff:
  case DecisionVerdict::RejectedNoBenefit:
  case DecisionVerdict::RejectedSizeLimit: {
    // The candidate was declined, so the merge should still be there. A
    // rejection is only auditable as a miss when the simulation saw *no*
    // opportunities — a candidate rejected on cost grounds with real
    // predicted folds is the trade-off function working as designed.
    Block *Merge = F.getBlockById(D.MergeId);
    if (!Merge || !Merge->isMerge())
      return AuditVerdict::Skipped;
    if (D.Opportunities.total() == 0) {
      if (mergeHasPerEdgeProvableFold(Flow, Merge))
        return AuditVerdict::Underclaimed;
      Block *Pred = F.getBlockById(D.PredId);
      if (Pred && Merge->hasPred(Pred) &&
          phiEdgeCarriesUnescapableAlloc(Flow, Merge,
                                         Merge->indexOfPred(Pred)))
        return AuditVerdict::Underclaimed;
    }
    return AuditVerdict::Confirmed;
  }
  }
  return AuditVerdict::Skipped;
}

} // namespace

SimAuditCounts dbds::auditSimulation(Function &F, DecisionLog &Log,
                                     size_t FirstIndex) {
  SimAuditCounts Counts;
  Counts.Ran = true;
  StampFlow Flow(F);
  Liveness Live(F);

  std::vector<DuplicationDecision> &Decisions = Log.mutableDecisions();
  for (size_t Idx = FirstIndex; Idx < Decisions.size(); ++Idx) {
    DuplicationDecision &D = Decisions[Idx];
    if (D.FunctionName != F.getName())
      continue;
    D.Audit = classify(Flow, Live, F, D);
    switch (D.Audit) {
    case AuditVerdict::Confirmed:
      ++Counts.Confirmed;
      break;
    case AuditVerdict::Overclaimed:
      ++Counts.Overclaimed;
      break;
    case AuditVerdict::Underclaimed:
      ++Counts.Underclaimed;
      break;
    case AuditVerdict::Skipped:
      ++Counts.Skipped;
      break;
    case AuditVerdict::Unaudited:
      break;
    }
  }

  ++functions_audited;
  decisions_confirmed += Counts.Confirmed;
  decisions_overclaimed += Counts.Overclaimed;
  decisions_underclaimed += Counts.Underclaimed;
  decisions_skipped += Counts.Skipped;
  return Counts;
}
