//===- analysis/Loops.h - Natural loop detection ----------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Back-edge based natural loop detection. DBDS never duplicates a loop
/// header (that would be loop peeling, which the paper defers to future
/// work), and the static frequency estimator weights loop bodies.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_ANALYSIS_LOOPS_H
#define DBDS_ANALYSIS_LOOPS_H

#include "analysis/DominatorTree.h"

#include <unordered_map>
#include <unordered_set>

namespace dbds {

/// Loop structure of one function (header set + per-block nesting depth).
class LoopInfo {
public:
  LoopInfo(Function &F, const DominatorTree &DT);

  /// True if \p B is the header of a natural loop.
  bool isLoopHeader(Block *B) const { return Headers.count(B) != 0; }

  /// Number of loops containing \p B (0 outside any loop).
  unsigned loopDepth(Block *B) const {
    auto It = Depth.find(B);
    return It == Depth.end() ? 0 : It->second;
  }

  /// True if edge \p From -> \p To is a back edge (target dominates source).
  static bool isBackEdge(Block *From, Block *To, const DominatorTree &DT) {
    return DT.isReachable(From) && DT.isReachable(To) &&
           DT.dominates(To, From);
  }

private:
  std::unordered_set<Block *> Headers;
  std::unordered_map<Block *, unsigned> Depth;
};

} // namespace dbds

#endif // DBDS_ANALYSIS_LOOPS_H
