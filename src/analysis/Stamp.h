//===- analysis/Stamp.h - Value range / nullness lattice ------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stamps describe what a compiler knows about an SSA value: an integer
/// range for Int values, a nullness state for Obj values. Conditional
/// elimination (paper §2, Stadler et al.) refines stamps along dominating
/// branch edges and folds comparisons whose operand stamps are decisive —
/// both in the real CE phase and inside the DBDS simulation tier.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_ANALYSIS_STAMP_H
#define DBDS_ANALYSIS_STAMP_H

#include "ir/Instruction.h"

#include <cstdint>
#include <optional>

namespace dbds {

/// Knowledge about one SSA value.
class Stamp {
public:
  /// Unrestricted stamp for a value of type \p Ty.
  static Stamp top(Type Ty) {
    if (Ty == Type::Obj)
      return Stamp(Nullness::Maybe);
    return Stamp(INT64_MIN, INT64_MAX);
  }

  /// Integer range [Lo, Hi] (inclusive). Requires Lo <= Hi.
  static Stamp range(int64_t Lo, int64_t Hi) { return Stamp(Lo, Hi); }

  /// Exactly the integer \p Value.
  static Stamp exact(int64_t Value) { return Stamp(Value, Value); }

  /// Object stamps.
  static Stamp definitelyNull() { return Stamp(Nullness::Null); }
  static Stamp nonNull() { return Stamp(Nullness::NonNull); }
  static Stamp maybeNull() { return Stamp(Nullness::Maybe); }

  bool isInt() const { return Kind == StampKind::Int; }
  bool isObj() const { return Kind == StampKind::Obj; }

  int64_t lo() const {
    assert(isInt() && "range of a non-integer stamp");
    return Lo;
  }
  int64_t hi() const {
    assert(isInt() && "range of a non-integer stamp");
    return Hi;
  }

  /// The single value this stamp allows, if any.
  std::optional<int64_t> asConstant() const {
    if (isInt() && Lo == Hi)
      return Lo;
    return std::nullopt;
  }

  bool isNull() const { return isObj() && Null == Nullness::Null; }
  bool isNonNull() const { return isObj() && Null == Nullness::NonNull; }

  /// Meet (intersection of knowledge): the stamp describing values allowed
  /// by both. Returns nullopt when the intersection is empty (dead code).
  std::optional<Stamp> meet(const Stamp &Other) const;

  /// Join (union of knowledge): the stamp describing values allowed by
  /// either. Used at merges (phi stamps).
  Stamp join(const Stamp &Other) const;

  bool operator==(const Stamp &Other) const;

private:
  enum class StampKind : uint8_t { Int, Obj };
  enum class Nullness : uint8_t { Null, NonNull, Maybe };

  Stamp(int64_t Lo, int64_t Hi) : Kind(StampKind::Int), Lo(Lo), Hi(Hi) {
    assert(Lo <= Hi && "empty range stamp");
  }
  explicit Stamp(Nullness N) : Kind(StampKind::Obj), Null(N) {}

  StampKind Kind;
  int64_t Lo = 0, Hi = 0;
  Nullness Null = Nullness::Maybe;
};

/// A stamp lookup using only locally-obvious facts (constants are exact,
/// allocations are non-null, everything else is top). CE and the
/// simulation pass richer lookups.
Stamp shallowStamp(Instruction *I);

/// Forward transfer function: the stamp of `Op(LHS, RHS)` given operand
/// stamps (conservative; saturates on potential overflow).
Stamp binaryStamp(Opcode Op, const Stamp &LHS, const Stamp &RHS);

/// Forward transfer function for unary arithmetic.
Stamp unaryStamp(Opcode Op, const Stamp &Value);

/// Tries to decide `Pred(LHS, RHS)` from operand stamps; nullopt when the
/// stamps are not decisive.
std::optional<bool> foldCompare(Predicate Pred, const Stamp &LHS,
                                const Stamp &RHS);

/// The refinement of \p Input assuming `Pred(x, Other)` evaluates to
/// \p Holds, where \p Input is x's current stamp and \p Other the other
/// operand's stamp. Returns \p Input when nothing can be learned, nullopt
/// when the assumption is contradictory (branch is dead).
std::optional<Stamp> refineByCompare(Predicate Pred, const Stamp &Input,
                                     const Stamp &Other, bool Holds);

} // namespace dbds

#endif // DBDS_ANALYSIS_STAMP_H
