//===- analysis/LintRules.cpp - The standard lint rule set ----------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The standard rules. The structure stage is the old verifyFunction split
// into named, multi-finding rules; the semantic stage adds the checks the
// monolithic verifier could not express (phi-synonym dominance per edge,
// stamp soundness, loop shape, dead phis, cost-model invariants).
//
// Root-cause attribution: each rule owns one class of invariant and skips
// territory owned by an upstream rule (cfg-edge skips edges whose source
// has no terminator; the dominance rules skip unreachable blocks). Together
// with the structure/semantic gating this keeps one defect mapped to one
// rule id — the property the selftest fixtures pin down.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"

#include "ir/Printer.h"

#include <unordered_set>

using namespace dbds;

namespace {

constexpr LintSeverity Error = LintSeverity::Error;
constexpr LintSeverity Warn = LintSeverity::Warn;

//===----------------------------------------------------------------------===//
// Structure stage
//===----------------------------------------------------------------------===//

/// Every block ends in exactly one trailing terminator whose targets are
/// live blocks; instruction parent/function links are intact; an If never
/// has identical successors (must be canonicalized to Jump).
class BlockStructureRule : public LintRule {
public:
  const char *id() const override { return "block-structure"; }
  const char *description() const override {
    return "blocks end in one trailing terminator targeting live blocks; "
           "instruction parent links are intact";
  }
  Stage stage() const override { return Stage::Structure; }

  void run(LintContext &Ctx) override {
    Function &F = Ctx.function();
    if (Ctx.blocks().empty()) {
      Ctx.report(Error, nullptr, nullptr, "function has no blocks");
      return;
    }
    for (Block *B : Ctx.blocks()) {
      Instruction *Term = B->getTerminator();
      if (!Term)
        Ctx.report(Error, B, nullptr,
                   "block does not end with a terminator");
      for (Instruction *I : *B) {
        if (I->isTerminator() && I != Term)
          Ctx.report(Error, B, I, "terminator in the middle of the block");
        if (I->getBlock() != B)
          Ctx.report(Error, B, I, "instruction parent link broken");
        if (I->getFunction() != &F)
          Ctx.report(Error, B, I, "instruction function link broken");
      }
      if (auto *If = Term ? dyn_cast<IfInst>(Term) : nullptr) {
        if (If->getTrueSucc() == If->getFalseSucc())
          Ctx.report(Error, B, If,
                     "if with identical successors (canonical form is a "
                     "jump)");
        if (!Ctx.isLiveBlock(If->getTrueSucc()) ||
            !Ctx.isLiveBlock(If->getFalseSucc()))
          Ctx.report(Error, B, If, "branch targets an erased block");
      }
      if (auto *Jump = Term ? dyn_cast<JumpInst>(Term) : nullptr)
        if (!Ctx.isLiveBlock(Jump->getTarget()))
          Ctx.report(Error, B, Jump, "jump targets an erased block");
    }
  }
};

/// Predecessor/successor symmetry with edge multiplicity; predecessors are
/// live; the entry block has no predecessors. Edges whose source has no
/// terminator are owned by block-structure and skipped here.
class CfgEdgeRule : public LintRule {
public:
  const char *id() const override { return "cfg-edge"; }
  const char *description() const override {
    return "predecessor and successor lists agree (with edge multiplicity); "
           "the entry block has no predecessors";
  }
  Stage stage() const override { return Stage::Structure; }

  void run(LintContext &Ctx) override {
    if (Ctx.blocks().empty())
      return;
    Function &F = Ctx.function();
    if (F.getEntry()->getNumPreds() != 0)
      Ctx.report(Error, F.getEntry(), nullptr,
                 "entry block has predecessors");
    for (Block *B : Ctx.blocks()) {
      std::unordered_set<const Block *> Checked;
      for (Block *P : B->preds()) {
        if (!Checked.insert(P).second)
          continue; // one finding per (pred, block) pair
        if (!Ctx.isLiveBlock(P)) {
          Ctx.report(Error, B, nullptr,
                     "predecessor b" + std::to_string(P->getId()) +
                         " is an erased block");
          continue;
        }
        if (!P->getTerminator())
          continue; // block-structure owns the missing terminator
        unsigned EdgeCount = 0;
        for (Block *S : P->succs())
          if (S == B)
            ++EdgeCount;
        unsigned PredCount = 0;
        for (Block *Q : B->preds())
          if (Q == P)
            ++PredCount;
        if (EdgeCount != PredCount)
          Ctx.report(Error, B, nullptr,
                     "edge multiplicity mismatch with predecessor " +
                         P->getName() + " (" + std::to_string(EdgeCount) +
                         " branch edges vs " + std::to_string(PredCount) +
                         " predecessor entries)");
      }
      for (Block *S : B->succs())
        if (Ctx.isLiveBlock(S) && !S->hasPred(B))
          Ctx.report(Error, B, B->getTerminator(),
                     "successor " + S->getName() +
                         " does not list this block as a predecessor");
    }
  }
};

/// Phis form the leading group of their block and have exactly one input
/// per predecessor.
class PhiLayoutRule : public LintRule {
public:
  const char *id() const override { return "phi-layout"; }
  const char *description() const override {
    return "phis lead their block and have one input per predecessor";
  }
  Stage stage() const override { return Stage::Structure; }

  void run(LintContext &Ctx) override {
    for (Block *B : Ctx.blocks()) {
      bool SeenNonPhi = false;
      for (Instruction *I : *B) {
        auto *Phi = dyn_cast<PhiInst>(I);
        if (!Phi) {
          SeenNonPhi = true;
          continue;
        }
        if (SeenNonPhi)
          Ctx.report(Error, B, Phi, "phi after non-phi instruction");
        if (Phi->getNumInputs() != B->getNumPreds())
          Ctx.report(Error, B, Phi,
                     "phi has " + std::to_string(Phi->getNumInputs()) +
                         " inputs but the block has " +
                         std::to_string(B->getNumPreds()) +
                         " predecessors");
      }
    }
  }
};

/// Def-use chain symmetry: every operand's user list and every user's
/// operand list agree with matching multiplicity, and no inserted
/// instruction points at a detached one.
class UseListRule : public LintRule {
public:
  const char *id() const override { return "use-list"; }
  const char *description() const override {
    return "def-use chains are symmetric and reference only inserted "
           "instructions";
  }
  Stage stage() const override { return Stage::Structure; }

  void run(LintContext &Ctx) override {
    for (Block *B : Ctx.blocks()) {
      for (Instruction *I : *B) {
        std::unordered_set<const Instruction *> CheckedOps;
        for (Instruction *Op : I->operands()) {
          if (!CheckedOps.insert(Op).second)
            continue;
          unsigned InOperands = 0;
          for (Instruction *Op2 : I->operands())
            if (Op2 == Op)
              ++InOperands;
          unsigned InUsers = 0;
          for (Instruction *U : Op->users())
            if (U == I)
              ++InUsers;
          if (InOperands != InUsers)
            Ctx.report(Error, B, I,
                       "use-list mismatch with operand " +
                           printInstruction(Op) + " (" +
                           std::to_string(InOperands) + " operand slots vs " +
                           std::to_string(InUsers) + " user entries)");
          if (Op->getBlock() == nullptr)
            Ctx.report(Error, B, I,
                       "operand is detached: " + printInstruction(Op));
        }
        std::unordered_set<const Instruction *> CheckedUsers;
        for (Instruction *U : I->users())
          if (U->getBlock() == nullptr && CheckedUsers.insert(U).second)
            Ctx.report(Error, B, I,
                       "detached user recorded: " + printInstruction(U));
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// Semantic stage
//===----------------------------------------------------------------------===//

/// The IR's typing rules: integer arithmetic operands, same-type
/// comparisons (objects only EQ/NE), object-typed memory bases, integer
/// branch conditions, phi inputs matching the phi's type.
class TypeCheckRule : public LintRule {
public:
  const char *id() const override { return "type-check"; }
  const char *description() const override {
    return "operand types obey the IR typing rules";
  }

  void run(LintContext &Ctx) override {
    for (Block *B : Ctx.blocks()) {
      for (Instruction *I : *B) {
        if (auto *Phi = dyn_cast<PhiInst>(I)) {
          for (Instruction *In : Phi->operands())
            if (In->getType() != Phi->getType()) {
              Ctx.report(Error, B, Phi, "phi input type mismatch");
              break;
            }
        }
        if (auto *Bin = dyn_cast<BinaryInst>(I))
          if (Bin->getLHS()->getType() != Type::Int ||
              Bin->getRHS()->getType() != Type::Int)
            Ctx.report(Error, B, I, "non-integer operand of arithmetic");
        if (auto *Un = dyn_cast<UnaryInst>(I))
          if (Un->getValue()->getType() != Type::Int)
            Ctx.report(Error, B, I, "non-integer operand of arithmetic");
        if (auto *Cmp = dyn_cast<CompareInst>(I)) {
          if (Cmp->getLHS()->getType() != Cmp->getRHS()->getType())
            Ctx.report(Error, B, I, "mixed-type comparison");
          else if (Cmp->getLHS()->getType() == Type::Obj &&
                   Cmp->getPredicate() != Predicate::EQ &&
                   Cmp->getPredicate() != Predicate::NE)
            Ctx.report(Error, B, I, "ordered comparison of objects");
        }
        if (auto *Load = dyn_cast<LoadFieldInst>(I))
          if (Load->getObject()->getType() != Type::Obj)
            Ctx.report(Error, B, I, "load from non-object");
        if (auto *Store = dyn_cast<StoreFieldInst>(I))
          if (Store->getObject()->getType() != Type::Obj)
            Ctx.report(Error, B, I, "store to non-object");
        if (auto *If = dyn_cast<IfInst>(I))
          if (If->getCondition()->getType() != Type::Int)
            Ctx.report(Error, B, I, "non-integer branch condition");
      }
    }
  }
};

/// SSA dominance for ordinary (non-phi) uses. Phi uses are per-edge
/// properties and owned by phi-synonym; unreachable blocks are owned by
/// unreachable-code (the dominator tree does not cover them).
class DefDominatesUseRule : public LintRule {
public:
  const char *id() const override { return "def-dominates-use"; }
  const char *description() const override {
    return "every use is dominated by its definition";
  }

  void run(LintContext &Ctx) override {
    DominatorTree &DT = Ctx.domTree();
    for (Block *B : Ctx.blocks()) {
      if (!DT.isReachable(B))
        continue;
      for (Instruction *I : *B) {
        if (isa<PhiInst>(I))
          continue;
        for (Instruction *Op : I->operands()) {
          Block *DefBlock = Op->getBlock();
          if (!DefBlock || !DT.isReachable(DefBlock)) {
            Ctx.report(Error, B, I,
                       "uses a value defined in unreachable code: " +
                           printInstruction(Op));
            continue;
          }
          if (!DT.dominatesUse(Op, I))
            Ctx.report(Error, B, I,
                       "use not dominated by definition: " +
                           printInstruction(Op) + " defined in " +
                           DefBlock->getName());
        }
      }
    }
  }
};

/// The phi/predecessor alignment the Simulator's synonym maps rely on:
/// the input flowing in over edge k must dominate predecessor k (its
/// value must be available at the end of that edge), and a phi must not
/// reference only itself.
class PhiSynonymRule : public LintRule {
public:
  const char *id() const override { return "phi-synonym"; }
  const char *description() const override {
    return "each phi input dominates its predecessor edge (synonym-map "
           "soundness)";
  }

  void run(LintContext &Ctx) override {
    DominatorTree &DT = Ctx.domTree();
    for (Block *B : Ctx.blocks()) {
      if (!DT.isReachable(B))
        continue;
      for (PhiInst *Phi : B->phis()) {
        bool AllSelf = Phi->getNumInputs() != 0;
        for (unsigned Idx = 0, E = Phi->getNumInputs(); Idx != E; ++Idx) {
          Instruction *In = Phi->getInput(Idx);
          if (In != Phi)
            AllSelf = false;
          Block *P = B->preds()[Idx];
          if (!DT.isReachable(P))
            continue; // unreachable-code owns the dead edge
          Block *DefBlock = In->getBlock();
          if (!DefBlock || !DT.isReachable(DefBlock)) {
            Ctx.report(Error, B, Phi,
                       "input " + std::to_string(Idx) +
                           " is defined in unreachable code: " +
                           printInstruction(In));
            continue;
          }
          if (!DT.dominates(DefBlock, P))
            Ctx.report(Error, B, Phi,
                       "input " + std::to_string(Idx) + " (" +
                           printInstruction(In) +
                           ") does not dominate predecessor " +
                           P->getName());
        }
        if (AllSelf)
          Ctx.report(Error, B, Phi, "phi references only itself");
      }
    }
  }
};

/// Unreachable blocks are not permitted: phases must prune what they
/// disconnect (the dominance analyses exclude them, so any code left
/// there escapes every other check).
class UnreachableCodeRule : public LintRule {
public:
  const char *id() const override { return "unreachable-code"; }
  const char *description() const override {
    return "no block is unreachable from the entry";
  }

  void run(LintContext &Ctx) override {
    DominatorTree &DT = Ctx.domTree();
    for (Block *B : Ctx.blocks())
      if (!DT.isReachable(B))
        Ctx.report(Error, B, nullptr,
                   "unreachable block (phases must prune disconnected "
                   "code)");
  }
};

/// A phi that no instruction other than itself uses is dead weight the
/// duplication cost model still counts; DCE should have removed it.
class DeadPhiRule : public LintRule {
public:
  const char *id() const override { return "dead-phi"; }
  const char *description() const override {
    return "phis have at least one user other than themselves";
  }

  void run(LintContext &Ctx) override {
    DominatorTree &DT = Ctx.domTree();
    for (Block *B : Ctx.blocks()) {
      if (!DT.isReachable(B))
        continue;
      for (PhiInst *Phi : B->phis()) {
        bool HasRealUser = false;
        for (Instruction *U : Phi->users())
          if (U != Phi) {
            HasRealUser = true;
            break;
          }
        if (!HasRealUser)
          Ctx.report(Warn, B, Phi, "phi has no users outside itself");
      }
    }
  }
};

/// Natural-loop well-formedness: every loop has an exit (a branch leaving
/// the body or a return inside it), and the body is entered only through
/// its header. Warnings: an exit-less loop is a legal CFG (the program
/// just never terminates) and irreducible entries merely pessimize the
/// frequency estimator.
class LoopStructureRule : public LintRule {
public:
  const char *id() const override { return "loop-structure"; }
  const char *description() const override {
    return "loops have an exit and are entered through their header";
  }

  void run(LintContext &Ctx) override {
    DominatorTree &DT = Ctx.domTree();
    LoopInfo &LI = Ctx.loops();
    for (Block *Header : Ctx.blocks()) {
      if (!DT.isReachable(Header) || !LI.isLoopHeader(Header))
        continue;

      // The natural loop body: the header plus everything that reaches a
      // back edge source without passing through the header.
      std::unordered_set<Block *> Body{Header};
      std::vector<Block *> Work;
      for (Block *P : Header->preds())
        if (DT.isReachable(P) && LoopInfo::isBackEdge(P, Header, DT) &&
            Body.insert(P).second)
          Work.push_back(P);
      while (!Work.empty()) {
        Block *B = Work.back();
        Work.pop_back();
        for (Block *P : B->preds())
          if (DT.isReachable(P) && Body.insert(P).second)
            Work.push_back(P);
      }

      bool HasExit = false;
      for (Block *B : Body) {
        if (isa<ReturnInst>(B->getTerminator()))
          HasExit = true;
        for (Block *S : B->succs())
          if (!Body.count(S))
            HasExit = true;
      }
      if (!HasExit)
        Ctx.report(Warn, Header, nullptr, "loop has no exit");

      for (Block *B : Body) {
        if (B == Header)
          continue;
        for (Block *P : B->preds())
          if (DT.isReachable(P) && !Body.count(P))
            Ctx.report(Warn, B, nullptr,
                       "loop body entered without passing header " +
                           Header->getName() + " (irreducible entry)");
      }
    }
  }
};

/// Stamp soundness. Statically: a claimed stamp (from the StampClaim seam;
/// by default the StampMap recomputation, which is consistent by
/// construction) must contain the stamp derivable from the operand stamps
/// in one transfer step — a narrower claim is unjustified knowledge that
/// canonicalization would fold on. Dynamically (when observations are
/// present): the stamp must contain every value the interpreter actually
/// observed the instruction produce.
class StampSoundnessRule : public LintRule {
public:
  const char *id() const override { return "stamp-soundness"; }
  const char *description() const override {
    return "stamps contain their operand-derived stamp and all "
           "interpreter-observed values";
  }

  void run(LintContext &Ctx) override {
    DominatorTree &DT = Ctx.domTree();
    StampMap &SM = Ctx.stamps();
    const StampClaim &Claim = Ctx.stampClaim();
    const ObservationMap *Obs = Ctx.observations();
    for (Block *B : Ctx.blocks()) {
      if (!DT.isReachable(B))
        continue;
      for (Instruction *I : *B) {
        if (I->getType() == Type::Void)
          continue;
        Stamp Derived = deriveOneStep(I, SM);
        Stamp Claimed = Derived;
        if (Claim) {
          if (std::optional<Stamp> C = Claim(I)) {
            Claimed = *C;
            if (!contains(Claimed, Derived))
              Ctx.report(Error, B, I,
                         "claimed stamp " + describe(Claimed) +
                             " does not contain the operand-derived stamp " +
                             describe(Derived));
          }
        }
        if (Obs) {
          auto It = Obs->find(I);
          if (It != Obs->end())
            checkObserved(Ctx, B, I, Claimed, It->second);
        }
      }
    }
  }

private:
  /// One forward transfer step from the operands' (memoized, fixpoint)
  /// stamps. Mirrors StampMap::get's case split.
  static Stamp deriveOneStep(Instruction *I, StampMap &SM) {
    switch (I->getOpcode()) {
    case Opcode::Constant:
    case Opcode::New:
      return shallowStamp(I);
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
      return binaryStamp(I->getOpcode(), SM.get(I->getOperand(0)),
                         SM.get(I->getOperand(1)));
    case Opcode::Neg:
    case Opcode::Not:
      return unaryStamp(I->getOpcode(), SM.get(I->getOperand(0)));
    case Opcode::Cmp:
      return Stamp::range(0, 1);
    case Opcode::Phi: {
      auto *Phi = cast<PhiInst>(I);
      std::optional<Stamp> Joined;
      for (Instruction *In : Phi->operands()) {
        if (In == Phi)
          continue;
        Stamp S = SM.get(In);
        Joined = Joined ? Joined->join(S) : S;
      }
      return Joined ? *Joined : Stamp::top(I->getType());
    }
    default:
      return Stamp::top(I->getType());
    }
  }

  /// True if every value \p Inner allows is also allowed by \p Outer.
  static bool contains(const Stamp &Outer, const Stamp &Inner) {
    if (Outer.isInt() != Inner.isInt())
      return false;
    if (Outer.isInt())
      return Outer.lo() <= Inner.lo() && Inner.hi() <= Outer.hi();
    if (Outer.isNull())
      return Inner.isNull();
    if (Outer.isNonNull())
      return Inner.isNonNull();
    return true; // maybe-null contains every object stamp
  }

  static std::string describe(const Stamp &S) {
    if (S.isInt())
      return "int[" + std::to_string(S.lo()) + ", " + std::to_string(S.hi()) +
             "]";
    if (S.isNull())
      return "obj(null)";
    if (S.isNonNull())
      return "obj(non-null)";
    return "obj(maybe-null)";
  }

  static void checkObserved(LintContext &Ctx, Block *B, Instruction *I,
                            const Stamp &Claimed, const ObservedValues &V) {
    if (V.Samples == 0)
      return;
    if (Claimed.isInt()) {
      if (V.SawNull || V.SawNonNull) {
        Ctx.report(Error, B, I,
                   "integer stamp but object values were observed");
        return;
      }
      if (V.Min < Claimed.lo() || V.Max > Claimed.hi())
        Ctx.report(Error, B, I,
                   "observed values [" + std::to_string(V.Min) + ", " +
                       std::to_string(V.Max) + "] escape the stamp " +
                       describe(Claimed));
      return;
    }
    if (V.Min != INT64_MAX || V.Max != INT64_MIN) {
      Ctx.report(Error, B, I,
                 "object stamp but integer values were observed");
      return;
    }
    if (V.SawNull && Claimed.isNonNull())
      Ctx.report(Error, B, I, "null observed for a non-null stamp");
    if (V.SawNonNull && Claimed.isNull())
      Ctx.report(Error, B, I,
                 "non-null object observed for a null stamp");
  }
};

/// Cost-model coverage: the simulation's cost accounting assumes merges
/// and parameters are free and that Function::estimatedCodeSize agrees
/// with the per-instruction accessors (the budget math in §5.2 sums the
/// latter).
class CostModelRule : public LintRule {
public:
  const char *id() const override { return "cost-model"; }
  const char *description() const override {
    return "cost-model invariants hold (free phis/params, consistent code "
           "size accounting)";
  }

  void run(LintContext &Ctx) override {
    Function &F = Ctx.function();
    uint64_t Sum = 0;
    for (Block *B : Ctx.blocks()) {
      for (Instruction *I : *B) {
        Sum += I->estimatedSize();
        if ((isa<PhiInst>(I) || isa<ParamInst>(I)) &&
            (I->estimatedCycles() != 0 || I->estimatedSize() != 0))
          Ctx.report(Error, B, I,
                     "phi/param must be zero-cost (the duplication cost "
                     "model treats merges and parameters as free)");
        if (I->isTerminator() && I->estimatedSize() == 0)
          Ctx.report(Warn, B, I,
                     "terminator with zero size estimate skews block "
                     "duplication budgets");
      }
    }
    if (Sum != F.estimatedCodeSize())
      Ctx.report(Error, nullptr, nullptr,
                 "Function::estimatedCodeSize() (" +
                     std::to_string(F.estimatedCodeSize()) +
                     ") disagrees with the per-instruction sum (" +
                     std::to_string(Sum) + ")");
  }
};

} // namespace

void dbds::registerStandardLintRules(Linter &L) {
  // Structure stage (gates the semantic stage).
  L.add(std::make_unique<BlockStructureRule>());
  L.add(std::make_unique<CfgEdgeRule>());
  L.add(std::make_unique<PhiLayoutRule>());
  L.add(std::make_unique<UseListRule>());
  // Semantic stage.
  L.add(std::make_unique<TypeCheckRule>());
  L.add(std::make_unique<DefDominatesUseRule>());
  L.add(std::make_unique<PhiSynonymRule>());
  L.add(std::make_unique<UnreachableCodeRule>());
  L.add(std::make_unique<DeadPhiRule>());
  L.add(std::make_unique<LoopStructureRule>());
  L.add(std::make_unique<StampSoundnessRule>());
  L.add(std::make_unique<CostModelRule>());
}
