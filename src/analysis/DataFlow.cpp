//===- analysis/DataFlow.cpp - Sparse conditional dataflow ----------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/DataFlow.h"

#include "analysis/DominatorTree.h"

#include <algorithm>

using namespace dbds;

//===----------------------------------------------------------------------===//
// StampFlow
//===----------------------------------------------------------------------===//

StampFlow::StampFlow(Function &F, unsigned WideningThreshold)
    : F(F), WideningThreshold(std::max(1u, WideningThreshold)) {
  if (F.getNumBlocks() == 0)
    return;

  // The entry has no incoming edge; seed it directly.
  Block *Entry = F.getEntry();
  ExecBlocks.insert(Entry);
  VisitedBlocks.insert(Entry);
  for (Instruction *I : *Entry)
    visit(I);

  while (!EdgeWork.empty() || !InstWork.empty()) {
    if (!EdgeWork.empty()) {
      auto [To, PredIdx] = EdgeWork.back();
      EdgeWork.pop_back();
      (void)PredIdx;
      if (VisitedBlocks.insert(To).second) {
        // First executable edge into To: sweep the whole block.
        for (Instruction *I : *To)
          visit(I);
      } else {
        // Additional edge into an already-swept block: only phis can
        // learn anything new from it.
        for (PhiInst *Phi : To->phis())
          visit(Phi);
      }
      continue;
    }
    Instruction *I = InstWork.back();
    InstWork.pop_back();
    Block *B = I->getBlock();
    if (B && blockExecutable(B))
      visit(I);
  }
}

void StampFlow::markEdge(Block *To, unsigned PredIdx) {
  if (!ExecEdges.insert(edgeKey(To, PredIdx)).second)
    return;
  ExecBlocks.insert(To);
  EdgeWork.push_back({To, PredIdx});
}

void StampFlow::markEdgesTo(Block *From, Block *To) {
  ArrayRef<Block *> Preds = To->preds();
  for (unsigned Idx = 0; Idx < Preds.size(); ++Idx)
    if (Preds[Idx] == From)
      markEdge(To, Idx);
}

void StampFlow::raise(Instruction *I, Stamp New) {
  auto It = Stamps.find(I);
  if (It == Stamps.end()) {
    Stamps.emplace(I, New);
    RaiseCounts[I] = 1;
    for (Instruction *User : I->users())
      InstWork.push_back(User);
    return;
  }
  Stamp Old = It->second;
  // A kind mismatch only happens on malformed IR (e.g. a phi mixing Int
  // and Obj inputs); degrade to the unrestricted stamp of the
  // instruction's declared type rather than asserting inside join.
  Stamp Merged = Old.isInt() == New.isInt() ? Old.join(New)
                                            : Stamp::top(I->getType());
  if (Merged == Old)
    return;
  unsigned &Count = RaiseCounts[I];
  if (++Count > WideningThreshold && Merged.isInt() && Old.isInt()) {
    int64_t Lo = Merged.lo() < Old.lo() ? INT64_MIN : Merged.lo();
    int64_t Hi = Merged.hi() > Old.hi() ? INT64_MAX : Merged.hi();
    Merged = Stamp::range(Lo, Hi);
    ++Widenings;
    if (Merged == Old)
      return;
  }
  It->second = Merged;
  for (Instruction *User : I->users())
    InstWork.push_back(User);
}

void StampFlow::visit(Instruction *I) {
  ++Transfers;
  switch (I->getOpcode()) {
  case Opcode::Constant:
  case Opcode::Param:
    raise(I, shallowStamp(I));
    return;
  case Opcode::New:
    raise(I, Stamp::nonNull());
    return;
  case Opcode::LoadField:
  case Opcode::Call:
  case Opcode::Invoke:
    // Memory and calls are opaque to the stamp lattice.
    raise(I, Stamp::top(I->getType()));
    return;
  case Opcode::Phi: {
    auto *Phi = cast<PhiInst>(I);
    Block *B = Phi->getBlock();
    if (!B)
      return;
    std::optional<Stamp> Joined;
    ArrayRef<Block *> Preds = B->preds();
    unsigned NumInputs = Phi->getNumInputs();
    for (unsigned Idx = 0; Idx < Preds.size() && Idx < NumInputs; ++Idx) {
      if (!edgeExecutable(B, Idx))
        continue;
      std::optional<Stamp> In = edgeStamp(B, Idx, Phi->getInput(Idx));
      if (!In)
        continue; // Input not yet valued: stay optimistic.
      if (!Joined)
        Joined = In;
      else if (Joined->isInt() == In->isInt())
        Joined = Joined->join(*In);
      else
        Joined = Stamp::top(Phi->getType());
    }
    if (Joined)
      raise(Phi, *Joined);
    return;
  }
  case Opcode::Cmp: {
    auto *C = cast<CompareInst>(I);
    std::optional<Stamp> L = stampOf(C->getLHS());
    std::optional<Stamp> R = stampOf(C->getRHS());
    if (!L || !R)
      return;
    if (std::optional<bool> Decided = foldCompare(C->getPredicate(), *L, *R))
      raise(C, Stamp::exact(*Decided ? 1 : 0));
    else
      raise(C, Stamp::range(0, 1));
    return;
  }
  case Opcode::Neg:
  case Opcode::Not: {
    std::optional<Stamp> V = stampOf(I->getOperand(0));
    if (V)
      raise(I, unaryStamp(I->getOpcode(), *V));
    return;
  }
  case Opcode::If:
  case Opcode::Jump:
    visitTerminator(I->getBlock());
    return;
  case Opcode::Return:
  case Opcode::StoreField:
    return;
  default: {
    if (!isa<BinaryInst>(I))
      return;
    std::optional<Stamp> L = stampOf(I->getOperand(0));
    std::optional<Stamp> R = stampOf(I->getOperand(1));
    if (L && R)
      raise(I, binaryStamp(I->getOpcode(), *L, *R));
    return;
  }
  }
}

void StampFlow::visitTerminator(Block *B) {
  if (!B)
    return;
  Instruction *Term = B->getTerminator();
  if (!Term)
    return;
  if (auto *J = dyn_cast<JumpInst>(Term)) {
    markEdgesTo(B, J->getTarget());
    return;
  }
  auto *If = dyn_cast<IfInst>(Term);
  if (!If)
    return;
  if (If->getTrueSucc() == If->getFalseSucc()) {
    markEdgesTo(B, If->getTrueSucc());
    return;
  }
  // An unvalued condition means "not yet", not "unknown": marking edges
  // now would be premature and irrevocable. The If is re-visited through
  // the condition's use list once the condition gets a stamp.
  if (!stampOf(If->getCondition()))
    return;
  std::optional<bool> Decided = branchDecided(If);
  if (!Decided || *Decided)
    markEdgesTo(B, If->getTrueSucc());
  if (!Decided || !*Decided)
    markEdgesTo(B, If->getFalseSucc());
}

std::optional<Stamp> StampFlow::stampOf(const Instruction *I) const {
  auto It = Stamps.find(I);
  if (It != Stamps.end())
    return It->second;
  // Detached values (uniqued constants, scratch nodes) belong to no block
  // and are never swept; their stamp is context-free.
  if (I->getBlock() == nullptr)
    return shallowStamp(const_cast<Instruction *>(I));
  return std::nullopt;
}

Stamp StampFlow::stampOrTop(const Instruction *I) const {
  if (std::optional<Stamp> S = stampOf(I))
    return *S;
  return Stamp::top(I->getType());
}

std::optional<bool> StampFlow::branchDecided(const IfInst *If) const {
  std::optional<Stamp> Cond = stampOf(If->getCondition());
  if (!Cond || !Cond->isInt())
    return std::nullopt;
  if (Cond->lo() > 0 || Cond->hi() < 0)
    return true; // Zero excluded: always taken.
  if (Cond->lo() == 0 && Cond->hi() == 0)
    return false; // Exactly zero: never taken.
  return std::nullopt;
}

std::optional<Stamp> StampFlow::refineAlongEdge(const Block *From,
                                                bool TakenDir,
                                                const Instruction *V,
                                                const Stamp &In) const {
  Instruction *Term = From->getTerminator();
  auto *If = dyn_cast_if_present<IfInst>(Term);
  if (!If)
    return std::nullopt;
  Instruction *Cond = If->getCondition();
  // The condition value itself is pinned on a decisive edge: zero on the
  // false edge, and — when it is a 0/1 comparison result — one on the
  // true edge.
  if (V == Cond && In.isInt()) {
    if (!TakenDir)
      return In.meet(Stamp::exact(0)).value_or(In);
    if (In.lo() >= 0 && In.hi() <= 1)
      return Stamp::exact(1);
    return std::nullopt;
  }
  auto *C = dyn_cast<CompareInst>(Cond);
  if (!C)
    return std::nullopt;
  if (V == C->getLHS())
    return refineByCompare(C->getPredicate(), In,
                           stampOrTop(C->getRHS()), TakenDir);
  if (V == C->getRHS())
    return refineByCompare(swapPredicate(C->getPredicate()), In,
                           stampOrTop(C->getLHS()), TakenDir);
  return std::nullopt;
}

std::optional<Stamp> StampFlow::edgeStamp(const Block *To, unsigned PredIdx,
                                          const Instruction *V) const {
  std::optional<Stamp> Base = stampOf(V);
  if (!Base || !edgeExecutable(To, PredIdx))
    return Base;
  ArrayRef<Block *> Preds = To->preds();
  if (PredIdx >= Preds.size())
    return Base;
  const Block *From = Preds[PredIdx];
  auto *If = dyn_cast_if_present<IfInst>(From->getTerminator());
  if (!If || If->getTrueSucc() == If->getFalseSucc())
    return Base;
  bool TakenDir = If->getTrueSucc() == To;
  if (std::optional<Stamp> Refined = refineAlongEdge(From, TakenDir, V, *Base))
    return Refined;
  return Base;
}

//===----------------------------------------------------------------------===//
// Liveness
//===----------------------------------------------------------------------===//

Liveness::Liveness(Function &F) {
  std::vector<Block *> Order = computeRPO(F);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Iterations;
    // Sweep blocks in post order (reverse RPO): successors first, so one
    // sweep usually suffices on acyclic regions.
    for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
      Block *B = *It;
      std::unordered_set<const Instruction *> Out;
      for (Block *S : B->succs()) {
        auto LI = LiveIn.find(S);
        if (LI != LiveIn.end())
          Out.insert(LI->second.begin(), LI->second.end());
        // Phi inputs are uses at this predecessor's exit.
        ArrayRef<Block *> Preds = S->preds();
        for (unsigned Idx = 0; Idx < Preds.size(); ++Idx) {
          if (Preds[Idx] != B)
            continue;
          for (PhiInst *Phi : S->phis())
            if (Idx < Phi->getNumInputs())
              Out.insert(Phi->getInput(Idx));
        }
      }
      std::unordered_set<const Instruction *> In = Out;
      SmallVector<Instruction *, 8> NonPhis = B->nonPhis();
      for (size_t Idx = NonPhis.size(); Idx > 0; --Idx) {
        Instruction *I = NonPhis[Idx - 1];
        In.erase(I);
        for (Instruction *Op : I->operands())
          In.insert(Op);
      }
      for (PhiInst *Phi : B->phis())
        In.erase(Phi);
      if (Out != LiveOut[B]) {
        LiveOut[B] = std::move(Out);
        Changed = true;
      }
      if (In != LiveIn[B]) {
        LiveIn[B] = std::move(In);
        Changed = true;
      }
    }
  }
}

bool Liveness::isLiveOut(const Instruction *V, const Block *B) const {
  auto It = LiveOut.find(B);
  return It != LiveOut.end() && It->second.count(V) != 0;
}

bool Liveness::isLiveIn(const Instruction *V, const Block *B) const {
  auto It = LiveIn.find(B);
  return It != LiveIn.end() && It->second.count(V) != 0;
}
