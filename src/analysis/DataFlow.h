//===- analysis/DataFlow.h - Sparse conditional dataflow --------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reusable worklist-based dataflow layer over the IR (DESIGN.md §11):
///
///  - `StampFlow`: sparse conditional stamp propagation in the style of
///    Wegman/Zadeck SCCP, over the existing Stamp lattice. It tracks
///    executable CFG edges, joins phi inputs only over edges proven
///    executable, refines values along branch edges with refineByCompare
///    (the flow-sensitive mirror of the simulator's ScopedStamps), and
///    widens after repeated updates so loop-carried ranges converge in a
///    bounded number of steps.
///
///  - `Liveness`: a backward block-level liveness solver over SSA values
///    (phi inputs count as uses at the corresponding predecessor's exit),
///    built on the same block worklist discipline.
///
/// Both are snapshot analyses like DominatorTree: they run to fixed point
/// on construction and are invalidated by any IR mutation. Clients are the
/// flow-sensitive lint rules (DataFlowLintRules.cpp) and the simulation
/// auditor (SimAudit.h) — the repo's first semantic static-analysis layer,
/// used to check the Simulator's predictions rather than just IR shape.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_ANALYSIS_DATAFLOW_H
#define DBDS_ANALYSIS_DATAFLOW_H

#include "analysis/Stamp.h"
#include "ir/Function.h"

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace dbds {

/// Sparse conditional stamp propagation over one function.
///
/// The analysis is optimistic: values start unknown ("never executed"),
/// blocks start unreachable, and facts only widen as executability is
/// discovered. On a structurally valid function the result is therefore at
/// least as precise as the flow-insensitive StampMap — and strictly more
/// precise whenever a branch is decided or a phi input arrives over a dead
/// edge.
class StampFlow {
public:
  /// Builds the analysis and runs it to fixed point. \p WideningThreshold
  /// is the number of times one value's stamp may be raised before its
  /// moving range bounds are widened to +-inf (loop-carried ranges would
  /// otherwise climb one step per iteration).
  explicit StampFlow(Function &F, unsigned WideningThreshold = 8);

  /// True if \p B was proven executable (some path from entry can reach it
  /// under the stamp facts).
  bool blockExecutable(const Block *B) const {
    return ExecBlocks.count(B) != 0;
  }

  /// True if the CFG edge into \p To from its predecessor slot \p PredIdx
  /// was proven executable. Edge identity is (successor, predecessor
  /// index) so parallel edges from the same predecessor stay distinct —
  /// the same keying phi inputs use.
  bool edgeExecutable(const Block *To, unsigned PredIdx) const {
    return ExecEdges.count(edgeKey(To, PredIdx)) != 0;
  }

  /// The flow-sensitive stamp of \p I, or nullopt when \p I was never
  /// proven to execute (its block is dead, or it is a phi with no
  /// executable inputs yet).
  std::optional<Stamp> stampOf(const Instruction *I) const;

  /// stampOf with a conservative fallback: unknown values get the
  /// unrestricted stamp of their type.
  Stamp stampOrTop(const Instruction *I) const;

  /// The branch direction of \p If when its condition stamp decides it
  /// (condition != 0 is the taken direction, matching the interpreter).
  std::optional<bool> branchDecided(const IfInst *If) const;

  /// The stamp of \p V refined along the edge (\p To, \p PredIdx): when
  /// the predecessor ends in a decisive If over a comparison involving
  /// \p V, the comparison's outcome on that edge is folded into the stamp
  /// (the per-edge refinement ScopedStamps applies during simulation).
  /// nullopt when \p V is unknown or the edge is not executable.
  std::optional<Stamp> edgeStamp(const Block *To, unsigned PredIdx,
                                 const Instruction *V) const;

  // ---- Convergence statistics (tests, telemetry) -----------------------

  /// Total instruction transfer-function evaluations until fixed point.
  unsigned transfersRun() const { return Transfers; }

  /// Number of stamps that hit the widening threshold.
  unsigned widenings() const { return Widenings; }

private:
  static uint64_t edgeKey(const Block *To, unsigned PredIdx) {
    return (static_cast<uint64_t>(To->getId()) << 32) | PredIdx;
  }

  /// Marks an edge executable and queues the successor.
  void markEdge(Block *To, unsigned PredIdx);

  /// Marks every edge From -> To executable (used when a terminator's
  /// target occurs several times in To's predecessor list; marking all
  /// occurrences over-approximates soundly).
  void markEdgesTo(Block *From, Block *To);

  /// Raises \p I's stamp to (old join New), widening past the threshold;
  /// queues \p I's users when the stamp changed.
  void raise(Instruction *I, Stamp New);

  /// Runs \p I's transfer function against current operand stamps.
  void visit(Instruction *I);

  /// Evaluates \p B's terminator, marking successor edges feasible under
  /// the current condition stamp.
  void visitTerminator(Block *B);

  /// The refinement a decisive branch edge adds to \p V, given the edge's
  /// source terminator; nullopt when nothing is learned.
  std::optional<Stamp> refineAlongEdge(const Block *From, bool TakenDir,
                                       const Instruction *V,
                                       const Stamp &In) const;

  Function &F;
  unsigned WideningThreshold;
  unsigned Transfers = 0;
  unsigned Widenings = 0;

  std::unordered_set<const Block *> ExecBlocks;
  std::unordered_set<uint64_t> ExecEdges;
  std::unordered_map<const Instruction *, Stamp> Stamps;
  std::unordered_map<const Instruction *, unsigned> RaiseCounts;

  std::vector<std::pair<Block *, unsigned>> EdgeWork; ///< (To, PredIdx).
  std::vector<Instruction *> InstWork;
  std::unordered_set<const Block *> VisitedBlocks; ///< Full-block sweeps done.
};

/// Backward liveness of SSA values, per block. A value is live-out of B
/// when some path from B's exit reaches a use before any redefinition
/// (SSA: before nothing — defs are unique). Phi inputs are uses at the
/// corresponding predecessor's exit, not at the phi's block entry.
class Liveness {
public:
  explicit Liveness(Function &F);

  bool isLiveOut(const Instruction *V, const Block *B) const;
  bool isLiveIn(const Instruction *V, const Block *B) const;

  /// Number of backward sweeps until the fixed point (tests).
  unsigned iterations() const { return Iterations; }

private:
  std::unordered_map<const Block *, std::unordered_set<const Instruction *>>
      LiveIn, LiveOut;
  unsigned Iterations = 0;
};

} // namespace dbds

#endif // DBDS_ANALYSIS_DATAFLOW_H
