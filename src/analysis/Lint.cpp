//===- analysis/Lint.cpp - Pluggable IR static analysis -------------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"

#include "ir/Printer.h"
#include "support/Diagnostics.h"

using namespace dbds;

//===----------------------------------------------------------------------===//
// Findings and reports
//===----------------------------------------------------------------------===//

const char *dbds::lintSeverityName(LintSeverity S) {
  switch (S) {
  case LintSeverity::Note:
    return "note";
  case LintSeverity::Warn:
    return "warn";
  case LintSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string LintFinding::location() const {
  std::string Loc = "@" + FunctionName;
  if (!BlockName.empty())
    Loc += " " + BlockName;
  if (!InstDesc.empty())
    Loc += ": " + InstDesc;
  return Loc;
}

std::string LintFinding::render() const {
  return std::string(lintSeverityName(Severity)) + "[" + RuleId + "] " +
         location() + ": " + Message;
}

std::string LintFinding::key() const {
  // '\x1f' cannot occur in any component (rule ids, names, and printed
  // instructions are all printable ASCII).
  return RuleId + '\x1f' + std::string(lintSeverityName(Severity)) + '\x1f' +
         FunctionName + '\x1f' + BlockName + '\x1f' + InstDesc + '\x1f' +
         Message;
}

unsigned LintReport::count(LintSeverity S) const {
  unsigned N = 0;
  for (const LintFinding &F : Findings)
    if (F.Severity == S)
      ++N;
  return N;
}

bool LintReport::hasErrors() const {
  return firstError() != nullptr;
}

const LintFinding *LintReport::firstError() const {
  for (const LintFinding &F : Findings)
    if (F.Severity == LintSeverity::Error)
      return &F;
  return nullptr;
}

void LintReport::append(const LintReport &Other) {
  Findings.insert(Findings.end(), Other.Findings.begin(),
                  Other.Findings.end());
}

std::string LintReport::render() const {
  std::string Out;
  for (const LintFinding &F : Findings) {
    Out += F.render();
    Out += '\n';
  }
  return Out;
}

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        static const char Hex[] = "0123456789abcdef";
        Out += "\\u00";
        Out += Hex[(C >> 4) & 0xF];
        Out += Hex[C & 0xF];
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

std::string LintReport::renderJSON() const {
  std::string Out = "{\"findings\": [";
  bool First = true;
  for (const LintFinding &F : Findings) {
    if (!First)
      Out += ", ";
    First = false;
    Out += "{\"rule\": \"" + jsonEscape(F.RuleId) + "\", \"severity\": \"" +
           lintSeverityName(F.Severity) + "\", \"function\": \"" +
           jsonEscape(F.FunctionName) + "\", \"block\": \"" +
           jsonEscape(F.BlockName) + "\", \"instruction\": \"" +
           jsonEscape(F.InstDesc) + "\", \"message\": \"" +
           jsonEscape(F.Message) + "\"}";
  }
  Out += "], \"counts\": {\"error\": " +
         std::to_string(count(LintSeverity::Error)) +
         ", \"warn\": " + std::to_string(count(LintSeverity::Warn)) +
         ", \"note\": " + std::to_string(count(LintSeverity::Note)) + "}}";
  return Out;
}

//===----------------------------------------------------------------------===//
// LintContext
//===----------------------------------------------------------------------===//

LintContext::LintContext(Function &F, const Module *ClassTable,
                         const ObservationMap *Observations,
                         const StampClaim &Claim, LintReport &Report)
    : F(F), ClassTable(ClassTable), Observations(Observations), Claim(Claim),
      Report(Report), Blocks(F.blocks()),
      LiveBlocks(Blocks.begin(), Blocks.end()) {}

DominatorTree &LintContext::domTree() {
  if (!DT)
    DT = std::make_unique<DominatorTree>(F);
  return *DT;
}

LoopInfo &LintContext::loops() {
  if (!LI)
    LI = std::make_unique<LoopInfo>(F, domTree());
  return *LI;
}

StampMap &LintContext::stamps() {
  if (!SM)
    SM = std::make_unique<StampMap>();
  return *SM;
}

StampFlow &LintContext::flow() {
  if (!SF)
    SF = std::make_unique<StampFlow>(F);
  return *SF;
}

Liveness &LintContext::liveness() {
  if (!LV)
    LV = std::make_unique<Liveness>(F);
  return *LV;
}

void LintContext::report(LintSeverity Severity, const Block *B,
                         const Instruction *I, std::string Message) {
  assert(CurrentRule && "report() outside of a rule run");
  if (Severity == LintSeverity::Error &&
      CurrentRule->stage() == LintRule::Stage::Structure)
    SawStructureError = true;
  if (!B && I)
    B = I->getBlock();
  LintFinding Finding;
  Finding.RuleId = CurrentRule->id();
  // Severity demotion (--allow) never promotes.
  Finding.Severity = Severity < MaxSeverity ? Severity : MaxSeverity;
  Finding.FunctionName = F.getName();
  Finding.BlockName = B ? B->getName() : "";
  Finding.InstDesc = I ? printInstruction(I) : "";
  Finding.Message = std::move(Message);
  Report.Findings.push_back(std::move(Finding));
}

//===----------------------------------------------------------------------===//
// Linter
//===----------------------------------------------------------------------===//

LintRule::~LintRule() = default;

void Linter::add(std::unique_ptr<LintRule> Rule) {
  Entry E;
  E.Rule = std::move(Rule);
  Rules.push_back(std::move(E));
}

bool Linter::setEnabled(const std::string &Id, bool Enabled) {
  for (Entry &E : Rules)
    if (Id == E.Rule->id()) {
      E.Enabled = Enabled;
      return true;
    }
  return false;
}

bool Linter::setMaxSeverity(const std::string &Id, LintSeverity S) {
  for (Entry &E : Rules)
    if (Id == E.Rule->id()) {
      E.MaxSeverity = S;
      return true;
    }
  return false;
}

std::vector<const LintRule *> Linter::rules() const {
  std::vector<const LintRule *> Out;
  Out.reserve(Rules.size());
  for (const Entry &E : Rules)
    Out.push_back(E.Rule.get());
  return Out;
}

LintReport Linter::lint(Function &F,
                        const ObservationMap *Observations) const {
  LintReport Report;
  LintContext Ctx(F, ClassTable, Observations, Claim, Report);

  // The structure stage validates exactly what the semantic stage's
  // analyses (dominator tree, loops, stamps) assume. A structural error
  // gates the semantic stage entirely: running dominance queries over a
  // CFG with broken edge symmetry would crash or, worse, produce findings
  // whose root cause is the structural break. Gating is decided on the
  // rule-requested severity (LintContext::SawStructureError, recorded
  // before demotion) so that demoting a structure rule via setMaxSeverity
  // does not un-gate the semantic stage.
  auto RunStage = [&](LintRule::Stage Stage) {
    for (const Entry &E : Rules) {
      if (!E.Enabled || E.Rule->stage() != Stage)
        continue;
      Ctx.CurrentRule = E.Rule.get();
      Ctx.MaxSeverity = E.MaxSeverity;
      E.Rule->run(Ctx);
    }
    Ctx.CurrentRule = nullptr;
  };

  RunStage(LintRule::Stage::Structure);
  if (!Ctx.SawStructureError)
    RunStage(LintRule::Stage::Semantic);
  return Report;
}

LintReport Linter::lintModule(const Module &M) const {
  LintReport Report;
  for (Function *F : M.functions())
    Report.append(lint(*F));
  return Report;
}

Linter Linter::standard(const Module *ClassTable) {
  Linter L;
  L.setClassTable(ClassTable);
  registerStandardLintRules(L);
  return L;
}

Linter dbds::dataflowLinter(const Module *ClassTable) {
  Linter L = Linter::standard(ClassTable);
  registerDataflowLintRules(L);
  return L;
}

void dbds::reportToDiagnostics(const LintReport &Report,
                               DiagnosticEngine &Diags,
                               const std::string &Component) {
  for (const LintFinding &F : Report.Findings) {
    DiagKind Kind = DiagKind::Note;
    if (F.Severity == LintSeverity::Error)
      Kind = DiagKind::Error;
    else if (F.Severity == LintSeverity::Warn)
      Kind = DiagKind::Warning;
    std::string Where = F.BlockName.empty() ? "" : " " + F.BlockName;
    if (!F.InstDesc.empty())
      Where += ": " + F.InstDesc;
    Diags.report(Kind, Component, F.FunctionName,
                 "[" + F.RuleId + "]" + Where + ": " + F.Message);
  }
}
