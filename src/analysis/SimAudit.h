//===- analysis/SimAudit.h - Simulation-soundness auditor -------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SimAudit: a static check of the DBDS bet itself. The simulation tier
/// *predicts* what duplication will unlock (paper §4) and the trade-off
/// tier rules on those predictions (§5); nothing so far verified the
/// predictions against the IR that actually shipped. SimAudit replays the
/// recorded DuplicationDecision stream for one function against
/// dataflow-proven facts (analysis/DataFlow.h) on the post-DBDS IR and
/// classifies every record:
///
///  - Confirmed:    the decision matches the facts — an accepted candidate
///                  left no provably-foldable residue; a rejected one had
///                  no provable fold to miss.
///  - Overclaimed:  accepted (and kept), yet the duplicated region still
///                  contains instructions dataflow proves foldable — the
///                  predicted benefit did not fully materialize.
///  - Underclaimed: rejected with no predicted opportunities, yet per-edge
///                  stamps prove a fold duplication would have enabled —
///                  the simulation missed a real opportunity.
///  - Skipped:      not classifiable (stale block ids, rolled-back round).
///
/// Confirmed/(Confirmed+Overclaimed) is the simulator's precision,
/// Confirmed/(Confirmed+Underclaimed) its recall — the per-suite numbers
/// the bench JSON's `simulation_audit` section reports (telemetry/Report).
///
/// The audit is deterministic and runs inside the compile-service task
/// (task-local decision slice, index-ordered merge), so --jobs=N output is
/// byte-identical to --jobs=1 (DESIGN.md §9).
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_ANALYSIS_SIMAUDIT_H
#define DBDS_ANALYSIS_SIMAUDIT_H

#include "telemetry/DecisionLog.h"

#include <cstdint>

namespace dbds {

class Function;

/// Aggregated verdict counts of one or more audit passes.
struct SimAuditCounts {
  bool Ran = false; ///< Any audit pass contributed (gates reporting).
  uint64_t Confirmed = 0;
  uint64_t Overclaimed = 0;
  uint64_t Underclaimed = 0;
  uint64_t Skipped = 0;

  uint64_t classified() const { return Confirmed + Overclaimed + Underclaimed; }

  /// Fraction of effect-claiming predictions that held; 1 when none were
  /// classified (no evidence of a miss).
  double precision() const {
    uint64_t Denom = Confirmed + Overclaimed;
    return Denom == 0 ? 1.0 : static_cast<double>(Confirmed) / Denom;
  }

  /// Fraction of provable opportunities the simulation saw.
  double recall() const {
    uint64_t Denom = Confirmed + Underclaimed;
    return Denom == 0 ? 1.0 : static_cast<double>(Confirmed) / Denom;
  }

  void accumulate(const SimAuditCounts &Other) {
    Ran = Ran || Other.Ran;
    Confirmed += Other.Confirmed;
    Overclaimed += Other.Overclaimed;
    Underclaimed += Other.Underclaimed;
    Skipped += Other.Skipped;
  }
};

/// Audits every record of \p Log with index >= \p FirstIndex that names
/// \p F, writing each record's AuditVerdict in place, and returns the
/// counts. \p F must be the *post-DBDS* IR the decisions produced; the
/// caller is responsible for running this before unrelated functions'
/// records are merged in (the compile service audits its task-local slice).
SimAuditCounts auditSimulation(Function &F, DecisionLog &Log,
                               size_t FirstIndex = 0);

} // namespace dbds

#endif // DBDS_ANALYSIS_SIMAUDIT_H
