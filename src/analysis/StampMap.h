//===- analysis/StampMap.h - On-demand forward stamp computation ----*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memoized, on-demand forward stamps for SSA values (no control-flow
/// refinement — conditional elimination layers refinement on top). Phi
/// cycles are broken by assuming top for in-progress values.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_ANALYSIS_STAMPMAP_H
#define DBDS_ANALYSIS_STAMPMAP_H

#include "analysis/Stamp.h"

#include <unordered_map>

namespace dbds {

/// Whole-function stamp oracle. Stamps describe value semantics, so memoized
/// entries stay valid across use-rewriting transformations.
class StampMap {
public:
  /// The best known stamp of \p I.
  Stamp get(Instruction *I);

private:
  enum class State : uint8_t { InProgress };
  std::unordered_map<Instruction *, Stamp> Memo;
  std::unordered_map<Instruction *, State> Pending;
};

} // namespace dbds

#endif // DBDS_ANALYSIS_STAMPMAP_H
