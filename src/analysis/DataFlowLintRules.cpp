//===- analysis/DataFlowLintRules.cpp - Flow-sensitive lint rules ---------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The flow-sensitive rule pack over analysis/DataFlow.h: six rules that
// prove facts about what can actually execute — executable edges, per-edge
// refined stamps — rather than checking IR shape. They are opt-in
// (registerDataflowLintRules / `irlint --dataflow`): on pipeline output
// every finding is a missed optimization or an analysis contradiction; on
// raw unoptimized IR the same findings are expected noise.
//
// Root-cause attribution follows LintRules.cpp: every rule only looks at
// flow-executable territory, so one dead branch upstream does not cascade
// into findings from every rule downstream of it.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"

#include <string>

using namespace dbds;

namespace {

constexpr LintSeverity Error = LintSeverity::Error;
constexpr LintSeverity Warn = LintSeverity::Warn;

/// A use that can execute although its definition provably cannot: the
/// flow-sensitive sharpening of def-dominates-use. On dominance-correct
/// IR executability is closed under dominators, so this fires only
/// together with a dominance break — but it adds the *witness* that the
/// broken use is live, not latent in dead code.
class FlowDefReachRule : public LintRule {
public:
  const char *id() const override { return "flow-def-reach"; }
  const char *description() const override {
    return "no executable use reads a value whose definition can never "
           "execute";
  }

  void run(LintContext &Ctx) override {
    StampFlow &Flow = Ctx.flow();
    for (Block *B : Ctx.blocks()) {
      if (!Flow.blockExecutable(B))
        continue;
      for (Instruction *I : B->nonPhis()) {
        for (Instruction *Op : I->operands()) {
          Block *DefB = Op->getBlock();
          if (!DefB || !Ctx.isLiveBlock(DefB))
            continue; // Detached values are context-free; erased blocks
                      // are use-list territory.
          if (!Flow.blockExecutable(DefB))
            Ctx.report(Error, B, I,
                       "operand defined in " + DefB->getName() +
                           ", which can never execute");
        }
      }
      // Phi inputs count on their incoming edge: only executable edges
      // can deliver the value.
      ArrayRef<Block *> Preds = B->preds();
      for (PhiInst *Phi : B->phis()) {
        for (unsigned Idx = 0;
             Idx < Preds.size() && Idx < Phi->getNumInputs(); ++Idx) {
          if (!Flow.edgeExecutable(B, Idx))
            continue;
          Block *DefB = Phi->getInput(Idx)->getBlock();
          if (!DefB || !Ctx.isLiveBlock(DefB))
            continue;
          if (!Flow.blockExecutable(DefB))
            Ctx.report(Error, B, Phi,
                       "input " + std::to_string(Idx) + " defined in " +
                           DefB->getName() + ", which can never execute");
        }
      }
    }
  }
};

/// A phi input arriving over an edge that can never be taken: the value is
/// provably dead, and either a cleanup missed the dead edge or a
/// duplication decision left a stale input behind.
class FlowDeadPhiInputRule : public LintRule {
public:
  const char *id() const override { return "flow-dead-phi-input"; }
  const char *description() const override {
    return "phi inputs arriving over provably-dead edges";
  }

  void run(LintContext &Ctx) override {
    StampFlow &Flow = Ctx.flow();
    for (Block *B : Ctx.blocks()) {
      if (!Flow.blockExecutable(B))
        continue; // The whole block is rule flow-unreachable-merge's.
      ArrayRef<Block *> Preds = B->preds();
      for (PhiInst *Phi : B->phis())
        for (unsigned Idx = 0;
             Idx < Preds.size() && Idx < Phi->getNumInputs(); ++Idx)
          if (!Flow.edgeExecutable(B, Idx))
            Ctx.report(Warn, B, Phi,
                       "input " + std::to_string(Idx) + " from " +
                           Preds[Idx]->getName() +
                           " arrives over an edge that can never be taken");
    }
  }
};

/// An executable If whose condition stamp already decides it: the
/// canonicalizer (or conditional elimination) missed an always-taken
/// branch that dataflow can prove.
class FlowDeadBranchRule : public LintRule {
public:
  const char *id() const override { return "flow-dead-branch"; }
  const char *description() const override {
    return "branches whose condition is flow-provably decided";
  }

  void run(LintContext &Ctx) override {
    StampFlow &Flow = Ctx.flow();
    for (Block *B : Ctx.blocks()) {
      if (!Flow.blockExecutable(B))
        continue;
      auto *If = dyn_cast_if_present<IfInst>(B->getTerminator());
      if (!If || If->getTrueSucc() == If->getFalseSucc())
        continue; // Identical successors are block-structure territory.
      if (std::optional<bool> Decided = Flow.branchDecided(If))
        Ctx.report(Warn, B, If,
                   std::string("condition is provably ") +
                       (*Decided ? "true" : "false") +
                       "; the branch always takes the " +
                       (*Decided ? "true" : "false") + " successor");
    }
  }
};

/// The flow-sensitive stamp of a value must always refine the
/// flow-insensitive one (or an installed external claim). A disjoint pair
/// means one of the two analyses — or the claimed cache — is wrong:
/// contradictory knowledge about the same SSA value.
class FlowContradictoryJoinRule : public LintRule {
public:
  const char *id() const override { return "flow-contradictory-join"; }
  const char *description() const override {
    return "flow-proven stamps must intersect the flow-insensitive stamp "
           "(or the installed stamp claim)";
  }

  void run(LintContext &Ctx) override {
    StampFlow &Flow = Ctx.flow();
    for (Block *B : Ctx.blocks()) {
      if (!Flow.blockExecutable(B))
        continue;
      for (Instruction *I : *B) {
        if (I->getType() == Type::Void)
          continue;
        std::optional<Stamp> FlowS = Flow.stampOf(I);
        if (!FlowS)
          continue;
        std::optional<Stamp> Claimed;
        if (Ctx.stampClaim())
          Claimed = Ctx.stampClaim()(I);
        Stamp Other = Claimed ? *Claimed : Ctx.stamps().get(I);
        if (FlowS->isInt() != Other.isInt())
          continue; // Kind mismatches are type-check territory.
        if (!FlowS->meet(Other))
          Ctx.report(Error, B, I,
                     std::string("flow-proven stamp contradicts the ") +
                         (Claimed ? "installed stamp claim"
                                  : "flow-insensitive stamp") +
                         " (empty intersection)");
      }
    }
  }
};

/// A merge block every path to which is provably dead, yet still present
/// in the CFG: structurally reachable, flow-unreachable. Duplication or
/// conditional elimination proved the paths away but the block survived
/// cleanup.
class FlowUnreachableMergeRule : public LintRule {
public:
  const char *id() const override { return "flow-unreachable-merge"; }
  const char *description() const override {
    return "merge blocks that are structurally reachable but can never "
           "execute";
  }

  void run(LintContext &Ctx) override {
    StampFlow &Flow = Ctx.flow();
    DominatorTree &DT = Ctx.domTree();
    for (Block *B : Ctx.blocks()) {
      if (!B->isMerge())
        continue;
      if (DT.isReachable(B) && !Flow.blockExecutable(B))
        Ctx.report(Warn, B, nullptr,
                   "merge is structurally reachable but no incoming edge "
                   "can ever be taken");
    }
  }
};

/// A field access through a flow-proven definitely-null object in
/// executable code: the one operation whose semantics the VM leaves
/// undefined (the interpreter asserts on a null dereference; arithmetic,
/// including division by zero, is total). A proof that it executes is a
/// proof the program crashes.
class FlowNullProofRule : public LintRule {
public:
  const char *id() const override { return "flow-null-proof"; }
  const char *description() const override {
    return "field accesses through provably-null objects in executable "
           "code";
  }

  void run(LintContext &Ctx) override {
    StampFlow &Flow = Ctx.flow();
    for (Block *B : Ctx.blocks()) {
      if (!Flow.blockExecutable(B))
        continue;
      for (Instruction *I : *B) {
        Instruction *Object = nullptr;
        if (auto *Load = dyn_cast<LoadFieldInst>(I))
          Object = Load->getObject();
        else if (auto *Store = dyn_cast<StoreFieldInst>(I))
          Object = Store->getObject();
        if (!Object)
          continue;
        std::optional<Stamp> S = Flow.stampOf(Object);
        if (S && S->isNull())
          Ctx.report(Error, B, I,
                     "dereferences an object that is provably null on "
                     "every executable path");
      }
    }
  }
};

} // namespace

void dbds::registerDataflowLintRules(Linter &L) {
  L.add(std::make_unique<FlowDefReachRule>());
  L.add(std::make_unique<FlowDeadPhiInputRule>());
  L.add(std::make_unique<FlowDeadBranchRule>());
  L.add(std::make_unique<FlowContradictoryJoinRule>());
  L.add(std::make_unique<FlowUnreachableMergeRule>());
  L.add(std::make_unique<FlowNullProofRule>());
}
