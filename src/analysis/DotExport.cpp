//===- analysis/DotExport.cpp - GraphViz CFG/dominator-tree export --------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/DotExport.h"

#include "analysis/DominatorTree.h"
#include "ir/Block.h"
#include "ir/Function.h"
#include "ir/Printer.h"

#include <cstdio>

using namespace dbds;

namespace {

/// Escapes a string for use inside a dot label.
std::string escapeLabel(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '"':
    case '\\':
    case '{':
    case '}':
    case '<':
    case '>':
    case '|':
      Out += '\\';
      Out += C;
      break;
    case '\n':
      Out += "\\l"; // left-aligned line break
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

} // namespace

std::string dbds::exportDot(Function &F, const DotOptions &Options) {
  std::string Out = "digraph \"" + F.getName() + "\" {\n";
  Out += "  node [shape=record, fontname=\"monospace\", fontsize=9];\n";

  for (Block *B : F.blocks()) {
    std::string Label = B->getName();
    if (Options.ShowInstructions) {
      Label += ":\\l";
      for (const Instruction *I : *B)
        Label += escapeLabel("  " + printInstruction(I)) + "\\l";
    }
    std::string Attrs = "label=\"" + Label + "\"";
    if (Options.HighlightMerges && B->isMerge())
      Attrs += ", style=filled, fillcolor=\"#fde9c8\"";
    if (B == F.getEntry())
      Attrs += ", penwidth=2";
    Out += "  " + B->getName() + " [" + Attrs + "];\n";
  }

  for (Block *B : F.blocks()) {
    Instruction *Term = B->getTerminator();
    if (!Term)
      continue;
    if (auto *If = dyn_cast<IfInst>(Term)) {
      char Buf[64];
      snprintf(Buf, sizeof(Buf), "%.2f", If->getTrueProbability());
      Out += "  " + B->getName() + " -> " + If->getTrueSucc()->getName() +
             " [label=\"T " + Buf + "\"];\n";
      snprintf(Buf, sizeof(Buf), "%.2f", 1.0 - If->getTrueProbability());
      Out += "  " + B->getName() + " -> " + If->getFalseSucc()->getName() +
             " [label=\"F " + Buf + "\"];\n";
    } else if (auto *Jump = dyn_cast<JumpInst>(Term)) {
      Out += "  " + B->getName() + " -> " + Jump->getTarget()->getName() +
             ";\n";
    }
  }

  if (Options.ShowDominatorTree) {
    DominatorTree DT(F);
    for (Block *B : F.blocks()) {
      if (!DT.isReachable(B))
        continue;
      if (Block *Idom = DT.getIdom(B))
        Out += "  " + Idom->getName() + " -> " + B->getName() +
               " [style=dashed, color=gray, constraint=false];\n";
    }
  }

  Out += "}\n";
  return Out;
}
