//===- analysis/Verifier.h - IR invariant checking --------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The legacy single-error verifier interface, now a thin wrapper over the
/// IRLint engine (analysis/Lint.h): `verifyFunction` runs the standard rule
/// set and returns the first error-severity finding. Callers that want the
/// full multi-diagnostic report (every violation, with rule ids and
/// severities) should use Linter directly.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_ANALYSIS_VERIFIER_H
#define DBDS_ANALYSIS_VERIFIER_H

#include <string>

namespace dbds {

class DiagnosticEngine;
class Function;

/// Verifies \p F with the standard lint rules. Returns an empty string when
/// no error-severity finding exists, or a diagnostic describing the first
/// one (warnings do not fail verification).
std::string verifyFunction(Function &F);

/// Convenience wrapper: true when \p F has no error-severity findings.
/// On failure the full lint report is logged — through \p Diags when
/// provided, to stderr otherwise — so the findings are never silently
/// swallowed.
bool isValid(Function &F, DiagnosticEngine *Diags = nullptr);

} // namespace dbds

#endif // DBDS_ANALYSIS_VERIFIER_H
