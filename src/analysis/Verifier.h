//===- analysis/Verifier.h - IR invariant checking --------------*- C++ -*-===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks the structural and SSA invariants every phase must preserve:
/// terminator placement, predecessor/successor symmetry, phi/predecessor
/// alignment, leading-phi layout, def-dominates-use, use-list symmetry,
/// and basic typing rules. All tests and phases verify after mutation.
///
//===----------------------------------------------------------------------===//

#ifndef DBDS_ANALYSIS_VERIFIER_H
#define DBDS_ANALYSIS_VERIFIER_H

#include <string>

namespace dbds {

class Function;

/// Verifies \p F. Returns an empty string when all invariants hold, or a
/// diagnostic describing the first violation.
std::string verifyFunction(Function &F);

/// Convenience wrapper asserting success (used in tests and debug builds).
bool isValid(Function &F);

} // namespace dbds

#endif // DBDS_ANALYSIS_VERIFIER_H
