//===- analysis/DominatorTree.cpp - Dominance information -----------------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/DominatorTree.h"

#include <algorithm>

using namespace dbds;

std::vector<Block *> dbds::computeRPO(Function &F) {
  std::unordered_map<Block *, unsigned> State; // 0 new, 1 open, 2 done
  std::vector<std::pair<Block *, unsigned>> Stack;
  std::vector<Block *> Post;
  Block *Entry = F.getEntry();
  Stack.push_back({Entry, 0});
  State[Entry] = 1;
  while (!Stack.empty()) {
    Block *B = Stack.back().first;
    unsigned NextSucc = Stack.back().second;
    auto Succs = B->succs();
    if (NextSucc < Succs.size()) {
      ++Stack.back().second;
      Block *S = Succs[NextSucc];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.push_back({S, 0});
      }
      continue;
    }
    State[B] = 2;
    Post.push_back(B);
    Stack.pop_back();
  }
  return std::vector<Block *>(Post.rbegin(), Post.rend());
}

DominatorTree::DominatorTree(Function &F) : F(F) {
  RPO = computeRPO(F);
  for (unsigned I = 0; I != RPO.size(); ++I)
    Info[RPO[I]].RPOIndex = I;

  // Cooper-Harvey-Kennedy: iterate to a fixed point over RPO.
  Block *Entry = F.getEntry();
  Info[Entry].Idom = Entry;
  bool Changed = true;
  auto intersect = [&](Block *A, Block *B) {
    while (A != B) {
      while (Info[A].RPOIndex > Info[B].RPOIndex)
        A = Info[A].Idom;
      while (Info[B].RPOIndex > Info[A].RPOIndex)
        B = Info[B].Idom;
    }
    return A;
  };
  while (Changed) {
    Changed = false;
    for (Block *B : RPO) {
      if (B == Entry)
        continue;
      Block *NewIdom = nullptr;
      for (Block *P : B->preds()) {
        if (!Info.count(P) || !Info[P].Idom)
          continue; // unreachable or not yet processed
        NewIdom = NewIdom ? intersect(NewIdom, P) : P;
      }
      assert(NewIdom && "reachable block with no processed predecessor");
      if (Info[B].Idom != NewIdom) {
        Info[B].Idom = NewIdom;
        Changed = true;
      }
    }
  }

  // Children lists + DFS numbering for O(1) dominance queries.
  for (Block *B : RPO) {
    if (B == Entry)
      continue;
    Info[Info[B].Idom].Children.push_back(B);
  }
  unsigned Clock = 0;
  std::vector<std::pair<Block *, unsigned>> Stack;
  Stack.push_back({Entry, 0});
  Info[Entry].DFSIn = Clock++;
  PreOrder.push_back(Entry);
  while (!Stack.empty()) {
    Block *B = Stack.back().first;
    unsigned NextChild = Stack.back().second;
    auto &Children = Info[B].Children;
    if (NextChild < Children.size()) {
      ++Stack.back().second;
      Block *C = Children[NextChild];
      Info[C].DFSIn = Clock++;
      PreOrder.push_back(C);
      Stack.push_back({C, 0});
      continue;
    }
    Info[B].DFSOut = Clock++;
    Stack.pop_back();
  }

  // Dominance frontiers (Cooper-Harvey-Kennedy).
  for (Block *B : RPO) {
    if (B->getNumPreds() < 2)
      continue;
    for (Block *P : B->preds()) {
      if (!Info.count(P))
        continue;
      Block *Runner = P;
      while (Runner != Info[B].Idom) {
        auto &RunnerFrontier = Info[Runner].Frontier;
        if (std::find(RunnerFrontier.begin(), RunnerFrontier.end(), B) ==
            RunnerFrontier.end())
          RunnerFrontier.push_back(B);
        Runner = Info[Runner].Idom;
      }
    }
  }
}

Block *DominatorTree::getIdom(Block *B) const {
  Block *Idom = info(B).Idom;
  return Idom == B ? nullptr : Idom;
}

bool DominatorTree::dominates(Block *A, Block *B) const {
  const NodeInfo &IA = info(A);
  const NodeInfo &IB = info(B);
  return IA.DFSIn <= IB.DFSIn && IB.DFSOut <= IA.DFSOut;
}

bool DominatorTree::dominatesUse(Instruction *Def, Instruction *User) const {
  Block *DefBlock = Def->getBlock();
  assert(DefBlock && "definition is not inserted in a block");
  if (auto *Phi = dyn_cast<PhiInst>(User)) {
    // A phi use counts at the end of the corresponding predecessor. The
    // same value may flow in over several edges; require all of them.
    Block *UseBlock = Phi->getBlock();
    for (unsigned Idx = 0, E = Phi->getNumInputs(); Idx != E; ++Idx) {
      if (Phi->getInput(Idx) != Def)
        continue;
      if (!dominates(DefBlock, UseBlock->preds()[Idx]))
        return false;
    }
    return true;
  }
  Block *UseBlock = User->getBlock();
  assert(UseBlock && "user is not inserted in a block");
  if (DefBlock != UseBlock)
    return dominates(DefBlock, UseBlock);
  return UseBlock->indexOf(Def) < UseBlock->indexOf(User);
}

const std::vector<Block *> &DominatorTree::children(Block *B) const {
  return info(B).Children;
}

const std::vector<Block *> &DominatorTree::frontier(Block *B) const {
  return info(B).Frontier;
}

std::vector<Block *>
DominatorTree::iteratedFrontier(const std::vector<Block *> &Defs) const {
  std::vector<Block *> Result;
  std::unordered_set<Block *> InResult;
  std::vector<Block *> Worklist(Defs.begin(), Defs.end());
  while (!Worklist.empty()) {
    Block *B = Worklist.back();
    Worklist.pop_back();
    for (Block *FB : frontier(B)) {
      if (InResult.insert(FB).second) {
        Result.push_back(FB);
        Worklist.push_back(FB);
      }
    }
  }
  return Result;
}
