//===- analysis/BlockFrequency.cpp - Relative execution frequency ---------===//
//
// Part of the DBDS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/BlockFrequency.h"

using namespace dbds;

BlockFrequency BlockFrequency::computeStatic(Function &F,
                                             const DominatorTree &DT,
                                             const LoopInfo &LI) {
  BlockFrequency Result;
  // Acyclic propagation in RPO (back-edge contributions skipped), then a
  // loop-depth multiplier. A classic, deterministic static estimator.
  for (Block *B : DT.rpo()) {
    double In = 0.0;
    if (B == F.getEntry()) {
      In = 1.0;
    } else {
      for (Block *P : B->preds()) {
        if (!DT.isReachable(P) || LoopInfo::isBackEdge(P, B, DT))
          continue;
        double EdgeProb = 1.0;
        if (auto *If = dyn_cast<IfInst>(P->getTerminator())) {
          EdgeProb = 0.0;
          if (If->getTrueSucc() == B)
            EdgeProb += If->getTrueProbability();
          if (If->getFalseSucc() == B)
            EdgeProb += 1.0 - If->getTrueProbability();
        }
        In += Result.Freq[P] * EdgeProb;
      }
      // A loop header's frequency is its entry frequency times the
      // expected trip count. When the header itself holds the exit branch
      // (rotated-entry loops, the common shape here), the profiled
      // stay-probability p gives the expected 1/(1-p) iterations;
      // otherwise fall back to the generic multiplier.
      if (LI.isLoopHeader(B)) {
        double Multiplier = LoopMultiplier;
        if (auto *If = dyn_cast<IfInst>(B->getTerminator())) {
          bool TrueStays = DT.isReachable(If->getTrueSucc()) &&
                           LI.loopDepth(If->getTrueSucc()) >= LI.loopDepth(B);
          bool FalseStays =
              DT.isReachable(If->getFalseSucc()) &&
              LI.loopDepth(If->getFalseSucc()) >= LI.loopDepth(B);
          if (TrueStays != FalseStays) {
            double Stay = TrueStays ? If->getTrueProbability()
                                    : 1.0 - If->getTrueProbability();
            if (Stay > 0.999)
              Stay = 0.999;
            Multiplier = 1.0 / (1.0 - Stay);
          }
        }
        In *= Multiplier;
      }
    }
    Result.Freq[B] = In;
    Result.MaxFreq = In > Result.MaxFreq ? In : Result.MaxFreq;
  }
  return Result;
}

BlockFrequency BlockFrequency::fromProfile(
    const std::unordered_map<Block *, uint64_t> &Counts) {
  BlockFrequency Result;
  for (const auto &[B, Count] : Counts) {
    double C = static_cast<double>(Count);
    Result.Freq[B] = C;
    Result.MaxFreq = C > Result.MaxFreq ? C : Result.MaxFreq;
  }
  return Result;
}
